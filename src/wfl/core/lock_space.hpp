// Algorithm 3: fast and fair randomized wait-free locks (known bounds).
//
// A LockSpace owns a family of locks, each represented by one active set
// (Algorithm 1); together they form the multi active set (Algorithm 2) the
// attempts are inserted into. tryLocks(lockList, thunk) is Algorithm 3
// line-for-line:
//
//   1. Help phase (lines 17–20): getSet every lock in the list; run() every
//      revealed descriptor found. Any competitor whose priority the player
//      adversary could have seen before starting us is forced to finish
//      before we pick our own priority (Lemma 6.4).
//   2. multiInsert (line 21): insert our descriptor into every lock's set;
//      then the *reveal step* — after delaying until exactly T0 = c0·κ²L²·T
//      of our own steps have elapsed since the attempt started, store a
//      uniformly random priority. The fixed delay makes the reveal time a
//      pure function of the start time (Observation 6.7), which is what
//      denies the adversary any priority-dependent timing leverage.
//   3. run(p) (lines 26–37): per lock, getSet; compare priorities against
//      every active member, eliminating the lower one (ties: self loses, so
//      symmetric ties lose on both sides — footnote 3); celebrate every won
//      member met along the way; then decide (CAS active→won) and celebrate
//      self. Celebrating competitors *before* deciding is the safety
//      linchpin: by the time an attempt runs its own thunk, every earlier
//      winner on its locks has a finished thunk run, so thunk intervals on
//      overlapping lock sets never overlap (Definition 4.3).
//   4. multiRemove (line 23) and the trailing delay to T1 = c1·κLT own
//      steps after the reveal, fixing the attempt's end time as well.
//
// Wait-freedom is structural: every loop in this file is bounded by
// κ, L, or T. There are no unbounded retries anywhere on the attempt path.
//
// EBR guards are held across the two *work* segments (help+insert, and
// run+remove) and released across the delay segments, which dominate an
// attempt's steps; this keeps reclamation flowing while a slow process
// stalls in a delay. Releasing the guard there is safe: during a delay the
// process holds no borrowed references (its own descriptor is not retired
// until the end of the attempt).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Pool capacity overrides; 0 means "auto from process count".
struct SpaceSizing {
  std::uint32_t snap_pool_capacity = 0;
  std::uint32_t desc_pool_capacity = 0;
};

// Per-attempt measurements (own steps of the calling process), filled by
// try_locks when requested. pre_reveal_work and post_reveal_work exclude
// delay spinning — they are the quantities the T0/T1 budgets must dominate
// for the fairness argument to hold (Observation 6.7).
struct AttemptInfo {
  bool won = false;
  std::uint64_t pre_reveal_work = 0;   // help + multiInsert steps
  std::uint64_t post_reveal_work = 0;  // run + multiRemove steps
  std::uint64_t total_steps = 0;       // whole attempt, delays included
};

template <typename Plat>
class LockSpace {
 public:
  using Desc = Descriptor<Plat>;
  using Thunk = typename Desc::Thunk;
  using Set = ActiveSet<Plat, Desc*>;

  // A per-logical-process handle (EBR participant id). Cheap value type;
  // each OS thread / sim fiber registers once and passes it to try_locks.
  struct Process {
    int ebr_pid = -1;
  };

  LockSpace(const LockConfig& cfg, int max_procs, int num_locks,
            SpaceSizing sizing = {})
      : cfg_(cfg),
        max_procs_(max_procs),
        snap_pool_(sizing.snap_pool_capacity != 0
                       ? sizing.snap_pool_capacity
                       : auto_snap_capacity(max_procs)),
        desc_pool_(sizing.desc_pool_capacity != 0
                       ? sizing.desc_pool_capacity
                       : auto_desc_capacity(max_procs)),
        ebr_(max_procs),
        mem_{snap_pool_, ebr_} {
    cfg_.validate();
    WFL_CHECK(max_procs > 0 && num_locks > 0);
    WFL_CHECK(cfg_.max_locks <= kMaxLocksPerAttempt);
    WFL_CHECK(cfg_.max_thunk_steps <= kMaxThunkOps);
    WFL_CHECK(cfg_.kappa <= kMaxSetCap);
    locks_.reserve(static_cast<std::size_t>(num_locks));
    for (int i = 0; i < num_locks; ++i) {
      locks_.push_back(std::make_unique<Set>(cfg_.kappa, mem_));
    }
  }

  Process register_process() { return Process{ebr_.register_participant()}; }

  int num_locks() const { return static_cast<int>(locks_.size()); }
  int max_procs() const { return max_procs_; }
  const LockConfig& config() const { return cfg_; }

  // One tryLock attempt on `lock_ids` running `thunk` if all locks are
  // acquired. Returns success. Never blocks on other processes: completes
  // in O(κ²L²T) of the caller's own steps regardless of the schedule.
  bool try_locks(Process proc, std::span<const std::uint32_t> lock_ids,
                 Thunk thunk, AttemptInfo* info = nullptr) {
    WFL_CHECK(proc.ebr_pid >= 0);
    WFL_CHECK_MSG(lock_ids.size() <= cfg_.max_locks,
                  "lock set exceeds the configured L bound");
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      WFL_CHECK(lock_ids[i] < locks_.size());
      for (std::size_t j = i + 1; j < lock_ids.size(); ++j) {
        WFL_CHECK_MSG(lock_ids[i] != lock_ids[j],
                      "duplicate lock in lock set");
      }
    }
    attempts_.fetch_add(1, std::memory_order_relaxed);

    if (lock_ids.empty()) {
      // Degenerate attempt: nothing to contend on; run the thunk alone.
      if (thunk) {
        ThunkLog<Plat> local_log;
        IdemCtx<Plat> ctx(local_log, 0);
        thunk(ctx);
        thunk_runs_.fetch_add(1, std::memory_order_relaxed);
      }
      wins_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }

    const std::uint64_t start_steps = Plat::steps();

    const std::uint32_t didx = desc_pool_.alloc();
    Desc& d = desc_pool_.at(didx);
    d.reinit(serial_.fetch_add(1, std::memory_order_relaxed));
    d.lock_count = static_cast<std::uint32_t>(lock_ids.size());
    for (std::size_t i = 0; i < lock_ids.size(); ++i) {
      d.lock_ids[i] = lock_ids[i];
    }
    d.thunk = std::move(thunk);

    // --- work segment 1: help phase + multiInsert (lines 17-21) ---
    ebr_.enter(proc.ebr_pid);
    if (cfg_.help_phase) {
      MemberList<Desc*> members;
      for (std::uint32_t i = 0; i < d.lock_count; ++i) {
        multi_get_set<Plat>(*locks_[d.lock_ids[i]], members);
        for (Desc* q : members) {
          helps_.fetch_add(1, std::memory_order_relaxed);
          run(*q);
        }
      }
    }
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      d.slot_of_lock[i] = locks_[d.lock_ids[i]]->insert(&d, proc.ebr_pid);
    }
    ebr_.exit(proc.ebr_pid);
    const std::uint64_t pre_reveal_work = Plat::steps() - start_steps;

    // --- the reveal step, pinned to exactly T0 own steps (lines 10-11) ---
    delay_until(start_steps, cfg_.t0_steps(), &t0_overruns_);
    d.priority.store(draw_priority<Plat>());
    const std::uint64_t reveal_steps = Plat::steps();

    // --- work segment 2: compete, then multiRemove (lines 22-23) ---
    ebr_.enter(proc.ebr_pid);
    run(d);
    d.clear_flag();
    for (std::uint32_t i = 0; i < d.lock_count; ++i) {
      locks_[d.lock_ids[i]]->remove(d.slot_of_lock[i], proc.ebr_pid);
    }
    ebr_.exit(proc.ebr_pid);
    const std::uint64_t post_reveal_work = Plat::steps() - reveal_steps;

    // --- trailing delay pins the attempt's end time (line 24) ---
    delay_until(reveal_steps, cfg_.t1_steps(), &t1_overruns_);

    const bool won = d.status.load() == kStatusWon;
    if (won) wins_.fetch_add(1, std::memory_order_relaxed);
    ebr_.retire(proc.ebr_pid, this, didx, &free_descriptor);
    if (info != nullptr) {
      info->won = won;
      info->pre_reveal_work = pre_reveal_work;
      info->post_reveal_work = post_reveal_work;
      info->total_steps = Plat::steps() - start_steps;
    }
    return won;
  }

  LockStats stats() const {
    LockStats s;
    s.attempts = attempts_.load(std::memory_order_relaxed);
    s.wins = wins_.load(std::memory_order_relaxed);
    s.helps = helps_.load(std::memory_order_relaxed);
    s.eliminations = eliminations_.load(std::memory_order_relaxed);
    s.thunk_runs = thunk_runs_.load(std::memory_order_relaxed);
    s.t0_overruns = t0_overruns_.load(std::memory_order_relaxed);
    s.t1_overruns = t1_overruns_.load(std::memory_order_relaxed);
    return s;
  }

  // Test/diagnostic access to a lock's active set. An inspector must hold
  // an EBR guard (ebr_enter/ebr_exit) across get_set() and any use of the
  // returned snapshot. The adversary harness in exp_ablation uses this to
  // play the model's adaptive player, which may see all of history.
  Set& lock_set(std::uint32_t id) { return *locks_[id]; }
  void ebr_enter(Process p) { ebr_.enter(p.ebr_pid); }
  void ebr_exit(Process p) { ebr_.exit(p.ebr_pid); }

  // Crash-harness support: release `p`'s EBR guard on its behalf. Legal
  // ONLY when the process provably takes no further steps (a fiber parked
  // forever by a CrashSchedule). See EbrDomain::abandon.
  void abandon_process(Process p) { ebr_.abandon(p.ebr_pid); }

 private:
  // Initial sizes only: the pools grow on demand (reclamation can stall for
  // as long as any process is preempted inside an EBR guard, so no static
  // bound is safe — see arena.hpp).
  static std::uint32_t auto_snap_capacity(int procs) {
    return std::max<std::uint32_t>(4096,
                                   static_cast<std::uint32_t>(procs) * 256);
  }
  static std::uint32_t auto_desc_capacity(int procs) {
    return std::max<std::uint32_t>(512,
                                   static_cast<std::uint32_t>(procs) * 32);
  }

  static void free_descriptor(void* ctx, std::uint32_t handle) {
    static_cast<LockSpace*>(ctx)->desc_pool_.free(handle);
  }

  // The core competition procedure (lines 26-37). `p` may be the caller's
  // own descriptor or one being helped; the code cannot tell and must not.
  void run(Desc& p) {
    for (std::uint32_t i = 0; i < p.lock_count; ++i) {
      MemberList<Desc*> members;
      multi_get_set<Plat>(*locks_[p.lock_ids[i]], members);
      if (p.status.load() != kStatusActive) continue;
      for (Desc* q : members) {
        if (q->status.load() == kStatusActive && q != &p) {
          const std::int64_t pp = p.priority.load();
          const std::int64_t qp = q->priority.load();
          if (pp > qp) {
            eliminate(*q);
          } else {
            eliminate(p);  // covers qp > pp and the tie (self loses)
          }
        }
        celebrate_if_won(*q);
      }
    }
    decide(p);
    celebrate_if_won(p);
  }

  void decide(Desc& p) { p.status.cas(kStatusActive, kStatusWon); }

  void eliminate(Desc& p) {
    if (p.status.cas(kStatusActive, kStatusLost)) {
      eliminations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void celebrate_if_won(Desc& p) {
    if (p.status.load() != kStatusWon) return;
    thunk_runs_.fetch_add(1, std::memory_order_relaxed);
    if (p.thunk) {
      IdemCtx<Plat> ctx(p.log, p.tag_base);
      p.thunk(ctx);
    }
  }

  // Spins own steps until exactly `base + delta` steps have been taken.
  // Starting beyond the target is an overrun: the constants were too small
  // for the workload — counted, surfaced by exp_step_bound, asserted zero
  // in tests with default constants.
  void delay_until(std::uint64_t base, std::uint64_t delta,
                   std::atomic<std::uint64_t>* overruns) {
    if (cfg_.delay_mode == DelayMode::kOff) return;
    const std::uint64_t target = base + delta;
    if (Plat::steps() > target) {
      overruns->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    while (Plat::steps() < target) Plat::step();
  }

  LockConfig cfg_;
  int max_procs_;
  // Order matters: EbrDomain's destructor drains retired objects back into
  // the pools, so the pools must outlive it (destroyed in reverse order).
  IndexPool<SetSnap<Desc*>> snap_pool_;
  IndexPool<Desc> desc_pool_;
  EbrDomain ebr_;
  SetMem<Desc*> mem_;
  std::vector<std::unique_ptr<Set>> locks_;
  std::atomic<std::uint64_t> serial_{1};

  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> wins_{0};
  std::atomic<std::uint64_t> helps_{0};
  std::atomic<std::uint64_t> eliminations_{0};
  std::atomic<std::uint64_t> thunk_runs_{0};
  std::atomic<std::uint64_t> t0_overruns_{0};
  std::atomic<std::uint64_t> t1_overruns_{0};
};

}  // namespace wfl
