// LockSpace: the user-facing facade over the layered lock architecture.
//
// Since the decomposition, the machinery of Algorithm 3 lives in three
// layers, each with one concern:
//
//   * core/attempt.hpp    — the attempt engine: the pure competition core
//                           (run/decide/eliminate/celebrateIfWon) and the
//                           fixed delays, parameterized over a context;
//   * core/process.hpp    — ProcessHandle: per-process hot state (striped
//                           stats slab, serial blocks, scratch lists,
//                           re-entrant shard-guard depths);
//   * core/lock_table.hpp — LockTable: sharded storage (per-shard pools +
//                           EBR domains), attempt orchestration, routing.
//
// LockSpace is a thin veneer that keeps the original construction-and-call
// API stable for applications, examples and tests. It converts implicitly
// to LockTable&, which is what the data-structure substrates (apps/*.hpp),
// the retry helper and the transaction layer now take — so a LockSpace can
// be handed to any of them unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "wfl/core/attempt.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/process.hpp"

namespace wfl {

template <typename Plat>
class LockSpace {
 public:
  using Platform = Plat;
  using Table = LockTable<Plat>;
  using Desc = typename Table::Desc;
  using Thunk = typename Table::Thunk;
  using Set = typename Table::Set;
  using Process = typename Table::Process;

  LockSpace(const LockConfig& cfg, int max_procs, int num_locks,
            SpaceSizing sizing = {})
      : table_(cfg, max_procs, num_locks, sizing) {}

  // The facade IS its table; substrates and helpers take LockTable&.
  Table& table() { return table_; }
  const Table& table() const { return table_; }
  operator Table&() { return table_; }  // NOLINT(google-explicit-constructor)

  Process register_process() { return table_.register_process(); }

  int num_locks() const { return table_.num_locks(); }
  int max_procs() const { return table_.max_procs(); }
  std::uint32_t num_shards() const { return table_.num_shards(); }
  const LockConfig& config() const { return table_.config(); }

  bool try_locks(Process proc, std::span<const std::uint32_t> lock_ids,
                 Thunk thunk, AttemptInfo* info = nullptr) {
    return table_.try_locks(proc, lock_ids, std::move(thunk), info);
  }
  template <typename ViewT>
    requires std::is_convertible_v<const ViewT&, LockSetView>
  bool try_locks(Process proc, const ViewT& lock_ids, Thunk thunk,
                 AttemptInfo* info = nullptr) {
    return table_.try_locks(proc, LockSetView(lock_ids), std::move(thunk),
                            info);
  }

  LockStats stats() const { return table_.stats(); }

  Set& lock_set(std::uint32_t id) { return table_.lock_set(id); }
  void ebr_enter(Process p) { table_.ebr_enter(p); }
  void ebr_exit(Process p) { table_.ebr_exit(p); }
  void abandon_process(Process p) { table_.abandon_process(p); }
  void release_process(Process p) { table_.release_process(p); }

 private:
  Table table_;
};

}  // namespace wfl
