// Retry-until-success: the corollary of Theorem 1.1.
//
// A tryLock attempt succeeds with probability >= 1/C_p >= 1/(κL),
// independently across attempts (the paper's fairness bound), so retrying
// on failure gives a *randomized wait-free* lock: the number of attempts is
// geometric with mean <= κL and the total work is O(κ³L³T) expected steps.
// This header packages that corollary as the API most callers actually
// want, together with the per-call accounting the experiments report.
//
// The retry loop is NOT an unbounded spin in the model's sense: each
// attempt is wait-free in its own right, and the loop terminates with
// probability 1 with geometrically-decaying tail. A hard `max_attempts`
// escape is still offered for callers that must bound worst-case work
// deterministically (0 = retry forever).
//
// COMPATIBILITY VENEER: new code should use executor.hpp's
// submit(session, locks, f, Policy::retry()) — the same loop with the
// unified Outcome accounting (tests/test_session.cpp pins the two paths
// to identical attempt/step accounting). This free function remains for
// callers holding raw (table, process) pairs.
#pragma once

#include <cstdint>
#include <span>

#include "wfl/core/lock_table.hpp"

namespace wfl {

struct RetryStats {
  bool success = false;
  std::uint64_t attempts = 0;     // attempts consumed, including the winner
  std::uint64_t total_steps = 0;  // own steps across all attempts
};

// Retries `f` on `lock_ids` until an attempt wins (or `max_attempts` is
// exhausted, if nonzero). Returns the accounting either way.
//
// `f` must be a *copyable* functor (each attempt's descriptor stores its
// own copy) obeying the same capture contract as try_locks itself: by
// value, or pointers/references to state that outlives the lock space's
// reclamation grace period — a straggling helper may replay the thunk
// after this call returns, so capturing locals of the calling frame by
// reference is a use-after-free.
template <typename Plat, typename F>
RetryStats retry_until_success(LockTable<Plat>& table,
                               typename LockTable<Plat>::Process proc,
                               std::span<const std::uint32_t> lock_ids,
                               const F& f, std::uint64_t max_attempts = 0) {
  RetryStats rs;
  for (;;) {
    AttemptInfo info;
    typename LockTable<Plat>::Thunk attempt_thunk{F(f)};
    const bool won = table.try_locks(proc, lock_ids,
                                     std::move(attempt_thunk), &info);
    ++rs.attempts;
    rs.total_steps += info.total_steps;
    if (won) {
      rs.success = true;
      return rs;
    }
    if (max_attempts != 0 && rs.attempts >= max_attempts) return rs;
  }
}

}  // namespace wfl
