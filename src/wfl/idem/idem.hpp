// The idempotence construction of Theorem 4.2.
//
// A thunk (critical section) may be executed concurrently by its owner and
// by any number of helpers; idempotence (Definition 4.1) demands the
// combined runs look like a single run. The construction: every run replays
// the thunk from the top, but each shared-memory operation, in program
// order, first *agrees* with all other runs on its result through a shared
// per-thunk log.
//
//   * agree(i, v): one CAS of slot i from EMPTY to v, then one load — the
//     first run to arrive wins, everyone adopts the winner's value.
//     Constant overhead per operation, as the theorem requires.
//   * load:   raw-load the cell, agree on the observed word.
//   * store:  agree on the observed old word, then one single-shot physical
//     CAS(old -> (value, fresh unique tag)). Tags make installed words
//     unique, so at most one run's CAS takes effect; stragglers' CASes find
//     a different word and fail with no effect.
//   * cas:    agree on the observed word; if its value mismatches, the
//     logical CAS failed identically in every run. Otherwise one physical
//     CAS to a tagged word, then agree on the *outcome*. A straggler whose
//     physical CAS failed re-reads the cell: if it sees the desired word the
//     logical CAS clearly succeeded; if it sees anything newer, the winning
//     run must already have recorded the outcome (later operations only run
//     after the outcome slot is filled), so the straggler's (possibly wrong)
//     vote loses the agreement. This ordering argument is why the outcome
//     agreement must sit *between* the physical CAS and any later operation.
//   * once:   agree on a local nondeterministic value (randomness, time),
//     making replays deterministic.
//
// Because agreed values are identical across runs, every run takes the same
// branch at every step, so log-slot consumption is deterministic — the log
// needs no per-run indexing.
//
// Exactness assumes cells are mutated only through this construction (all
// writers install unique words). That holds for cells guarded by the locks
// — the regime the paper's locks guarantee — and extends to racy
// "group-locking" uses as long as *all* writers are instrumented
// (store_racy provides the bounded-retry variant for that case).
#pragma once

#include <cstdint>

#include "wfl/idem/cell.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Capacity contract: a thunk may perform at most kMaxThunkOps instrumented
// operations; each consumes at most 2 log slots.
inline constexpr std::uint32_t kMaxThunkOps = 64;
inline constexpr std::uint32_t kThunkLogCap = 2 * kMaxThunkOps;

// Outcome words for CAS agreement; distinct from kCellEmptySlot.
inline constexpr std::uint64_t kOutcomeFalse = 0;
inline constexpr std::uint64_t kOutcomeTrue = 1;

template <typename Plat>
class ThunkLog {
 public:
  ThunkLog() { reset(); }

  // Quiescent-only: called when the owning descriptor is (re)initialized,
  // after reclamation guarantees no helper can still touch it.
  void reset() {
    for (auto& s : slots_) s.init(kCellEmptySlot);
  }

  // Agreement on slot i: first arrival installs, everyone reads the winner.
  std::uint64_t agree(std::uint32_t i, std::uint64_t v) {
    WFL_CHECK_MSG(i < kThunkLogCap, "thunk exceeded its operation budget");
    WFL_DASSERT(v != kCellEmptySlot);
    typename Plat::template Atomic<std::uint64_t>& slot = slots_[i];
    // Avoid the CAS when already decided (common when helping a finished
    // run); the load alone is the agreement in that case.
    const std::uint64_t cur = slot.load();
    if (cur != kCellEmptySlot) return cur;
    slot.cas(kCellEmptySlot, v);
    return slot.load();
  }

 private:
  typename Plat::template Atomic<std::uint64_t> slots_[kThunkLogCap];
};

// Per-run cursor over a shared ThunkLog. Each run of the thunk constructs
// its own IdemCtx (positions are per-run; agreement makes them line up).
template <typename Plat>
class IdemCtx {
 public:
  // `tag_base` must be identical for all runs of the same thunk instance and
  // unique across thunk instances (the lock descriptor provides
  // serial * kMaxThunkOps).
  IdemCtx(ThunkLog<Plat>& log, std::uint32_t tag_base)
      : log_(&log), tag_base_(tag_base) {}

  std::uint32_t load(Cell<Plat>& c) {
    const std::uint64_t agreed = agree(c.raw_load());
    return cell_value(agreed);
  }

  void store(Cell<Plat>& c, std::uint32_t v) {
    const std::uint32_t op = consume_op();
    const std::uint64_t old = log_->agree(slot_for(op, 0), c.raw_load());
    const std::uint64_t desired = cell_pack(v, tag_for(op));
    WFL_DASSERT(old != desired);
    c.raw_cas(old, desired);  // single shot; failure means already done
  }

  bool cas(Cell<Plat>& c, std::uint32_t expected, std::uint32_t desired_v) {
    const std::uint32_t op = consume_op();
    const std::uint64_t cur = log_->agree(slot_for(op, 0), c.raw_load());
    if (cell_value(cur) != expected) {
      return false;  // same agreed word in every run => same branch
    }
    const std::uint64_t desired = cell_pack(desired_v, tag_for(op));
    std::uint64_t vote = kOutcomeFalse;
    if (c.raw_cas(cur, desired)) {
      vote = kOutcomeTrue;
    } else if (c.raw_load() == desired) {
      vote = kOutcomeTrue;  // another run of this very op installed it
    }
    const std::uint64_t outcome = log_->agree(slot_for(op, 1), vote);
    return outcome == kOutcomeTrue;
  }

  // Agree on a run-local nondeterministic value (e.g. a random draw). The
  // value must not equal kCellEmptySlot.
  std::uint64_t once(std::uint64_t v) { return agree(v); }

  // Bounded-retry store for racy (group-locking) cells where concurrent
  // instrumented writers outside this thunk are allowed. Returns false if
  // the write could not be applied within max_rounds (callers choose
  // max_rounds >= the interference bound, e.g. the point contention).
  bool store_racy(Cell<Plat>& c, std::uint32_t v, int max_rounds) {
    for (int r = 0; r < max_rounds; ++r) {
      const std::uint32_t op = consume_op();
      const std::uint64_t old = log_->agree(slot_for(op, 0), c.raw_load());
      const std::uint64_t desired = cell_pack(v, tag_for(op));
      if (old == desired) return true;  // an earlier round already landed
      std::uint64_t vote = kOutcomeFalse;
      if (c.raw_cas(old, desired)) {
        vote = kOutcomeTrue;
      } else if (c.raw_load() == desired) {
        vote = kOutcomeTrue;
      }
      if (log_->agree(slot_for(op, 1), vote) == kOutcomeTrue) return true;
    }
    return false;
  }

  std::uint32_t ops_used() const { return pos_; }

 private:
  std::uint32_t consume_op() {
    WFL_CHECK_MSG(pos_ < kMaxThunkOps,
                  "thunk exceeded kMaxThunkOps instrumented operations");
    return pos_++;
  }

  static std::uint32_t slot_for(std::uint32_t op, std::uint32_t which) {
    return 2 * op + which;
  }

  std::uint32_t tag_for(std::uint32_t op) const {
    // Never emit the initial tag 0: offset by 1. Uniqueness across thunk
    // instances comes from tag_base_ (see ctor contract).
    return tag_base_ + op + 1;
  }

  std::uint64_t agree(std::uint64_t v) {
    const std::uint32_t op = consume_op();
    return log_->agree(slot_for(op, 0), v);
  }

  ThunkLog<Plat>* log_;
  std::uint32_t pos_ = 0;
  std::uint32_t tag_base_;
};

}  // namespace wfl
