// The idempotence construction of Theorem 4.2.
//
// A thunk (critical section) may be executed concurrently by its owner and
// by any number of helpers; idempotence (Definition 4.1) demands the
// combined runs look like a single run. The construction: every run replays
// the thunk from the top, but each shared-memory operation, in program
// order, first *agrees* with all other runs on its result through a shared
// per-thunk log.
//
//   * agree(i, v): one CAS of slot i from EMPTY to v, then one load — the
//     first run to arrive wins, everyone adopts the winner's value.
//     Constant overhead per operation, as the theorem requires.
//   * load:   raw-load the cell, agree on the observed word.
//   * store:  agree on the observed old word, then one single-shot physical
//     CAS(old -> (value, fresh unique tag)). Tags make installed words
//     unique, so at most one run's CAS takes effect; stragglers' CASes find
//     a different word and fail with no effect.
//   * cas:    agree on the observed word; if its value mismatches, the
//     logical CAS failed identically in every run. Otherwise one physical
//     CAS to a tagged word, then agree on the *outcome*. A straggler whose
//     physical CAS failed re-reads the cell: if it sees the desired word the
//     logical CAS clearly succeeded; if it sees anything newer, the winning
//     run must already have recorded the outcome (later operations only run
//     after the outcome slot is filled), so the straggler's (possibly wrong)
//     vote loses the agreement. This ordering argument is why the outcome
//     agreement must sit *between* the physical CAS and any later operation.
//   * once:   agree on a local nondeterministic value (randomness, time),
//     making replays deterministic.
//
// Because agreed values are identical across runs, every run takes the same
// branch at every step, so log-slot consumption is deterministic — the log
// needs no per-run indexing.
//
// Exactness assumes cells are mutated only through this construction (all
// writers install unique words). That holds for cells guarded by the locks
// — the regime the paper's locks guarantee — and extends to racy
// "group-locking" uses as long as *all* writers are instrumented
// (store_racy provides the bounded-retry variant for that case).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "wfl/check/race.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Capacity contract: a thunk may perform at most kMaxThunkOps instrumented
// operations; each consumes at most 2 log slots.
inline constexpr std::uint32_t kMaxThunkOps = 64;
inline constexpr std::uint32_t kThunkLogCap = 2 * kMaxThunkOps;

// --- Idempotence tags ------------------------------------------------------
//
// Every instrumented write installs a (value, tag) word whose tag must be
// unique among all *concurrently live* thunk instances (cell.hpp). Tags are
// derived from the descriptor serial; the naive map
//     tag = uint32(serial) * kMaxThunkOps + op + 1
// had two defects: it recycles tags every 2^26 serials with an unmarked
// wrap, and — worse — near a wrap it can emit tag 0 == kCellInitTag (e.g.
// serial = k*2^26 - 1, op = 63), colliding with the initial word of every
// fresh cell. The map below reduces the flattened operation index
// serial*kMaxThunkOps + op modulo M = 2^32 - 1 and adds 1:
//
//   * the emitted tag lies in [1, 2^32 - 1] — NEVER kCellInitTag, for any
//     serial;
//   * because M is odd (gcd(kMaxThunkOps, M) = 1), the map is injective on
//     any window of M consecutive flattened indices: two live thunks can
//     collide only if their serials are ~2^26 apart AND a helper of the
//     older one is stalled inside an EBR guard across that entire span
//     while holding the exact colliding word — the bounded-assumption
//     regime the paper itself accepts for priorities (footnote 3), now
//     documented in DESIGN.md "Hot-path memory discipline".
//
// The reduction is done on the full 64-bit serial ((serial mod M) * 64 fits
// in 2^38, so the arithmetic never overflows), so no silent truncation
// happens anywhere on the way to the 32-bit tag word.
inline constexpr std::uint64_t kIdemTagModulus = 0xFFFFFFFFull;  // 2^32 - 1

constexpr std::uint32_t idem_tag_base(std::uint64_t serial) {
  return static_cast<std::uint32_t>(((serial % kIdemTagModulus) *
                                     kMaxThunkOps) % kIdemTagModulus);
}

constexpr std::uint32_t idem_tag(std::uint32_t tag_base, std::uint32_t op) {
  return static_cast<std::uint32_t>(
             (static_cast<std::uint64_t>(tag_base) + op) % kIdemTagModulus) +
         1;
}

// Outcome words for CAS agreement; distinct from kCellEmptySlot.
inline constexpr std::uint64_t kOutcomeFalse = 0;
inline constexpr std::uint64_t kOutcomeTrue = 1;

template <typename Plat>
class ThunkLog {
 public:
  ThunkLog() {
    for (auto& s : slots_) s.init(kCellEmptySlot);
    // Logs live inside pool-segment descriptors whose heap addresses get
    // reused across LockSpace generations; retire the raw note word so a
    // successor at the same address starts from fresh shadow state.
    race::created(&used_ops_, 0);
  }
  ~ThunkLog() { race::destroyed(&used_ops_); }

  ThunkLog(const ThunkLog&) = delete;
  ThunkLog& operator=(const ThunkLog&) = delete;

  // High-water mark for the lazy reset: recorded by every *completed* run
  // of the thunk (IdemCtx::ops_used() at return). Slot consumption is
  // deterministic across runs (agreement forces identical branches), so
  // all completed runs record the same exact value; a preempted helper has
  // touched only a prefix of the same slot sequence. Raw relaxed atomic:
  // bookkeeping outside the step model, and racing writers write equal
  // values.
  void note_used(std::uint32_t ops) {
    used_ops_.store(ops, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&used_ops_, kStore, relaxed, kLogNoteUsed, ops);
  }

  // Quiescent-only full reset: for logs whose runs do not maintain the
  // note_used high-water mark (the baseline adapters, ExclusiveIdem).
  void reset() {
    for (auto& s : slots_) s.init(kCellEmptySlot);
    used_ops_.store(0, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&used_ops_, kStore, relaxed, kLogNoteUsed, 0);
  }

  // Quiescent-only LAZY reset: called when the owning descriptor is
  // (re)initialized, after reclamation guarantees no helper can still touch
  // it (by then the owner's completed run has recorded the exact high-water
  // mark — a thunk only ever runs when its descriptor won, and the winner
  // always replays it to completion before retiring the descriptor; a
  // descriptor that lost never ran its thunk and consumed no slots).
  // Re-inits only the slots actually consumed — O(ops used), not
  // O(kThunkLogCap) — and returns that count (surfaced through the
  // lock-space stats).
  std::uint32_t reset_used() {
    const std::uint32_t used = used_ops_.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&used_ops_, kLoad, relaxed, kLogNoteUsed, used);
    const std::uint32_t n = std::min(2 * used, kThunkLogCap);
    for (std::uint32_t i = 0; i < n; ++i) slots_[i].init(kCellEmptySlot);
    used_ops_.store(0, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&used_ops_, kStore, relaxed, kLogNoteUsed, 0);
    return n;
  }

  // Agreement on slot i: first arrival installs, everyone reads the winner.
  std::uint64_t agree(std::uint32_t i, std::uint64_t v) {
    WFL_CHECK_MSG(i < kThunkLogCap, "thunk exceeded its operation budget");
    WFL_DASSERT(v != kCellEmptySlot);
    typename Plat::template Atomic<std::uint64_t>& slot = slots_[i];
    // Avoid the CAS when already decided (common when helping a finished
    // run); the load alone is the agreement in that case.
    const std::uint64_t cur = slot.load();
    if (cur != kCellEmptySlot) return cur;
    slot.cas(kCellEmptySlot, v);
    return slot.load();
  }

 private:
  typename Plat::template Atomic<std::uint64_t> slots_[kThunkLogCap];
  std::atomic<std::uint32_t> used_ops_{0};  // raw: outside the step model
};

// Per-run cursor over a shared ThunkLog. Each run of the thunk constructs
// its own IdemCtx (positions are per-run; agreement makes them line up).
template <typename Plat>
class IdemCtx {
 public:
  // `tag_base` must be identical for all runs of the same thunk instance
  // and unique across thunk instances within the idem_tag window — always
  // produce it with idem_tag_base(serial) (the lock descriptors do), never
  // by multiplying the serial directly: the raw product truncates mod 2^32
  // and can collide with kCellInitTag near wraps (see the tag contract
  // above).
  IdemCtx(ThunkLog<Plat>& log, std::uint32_t tag_base)
      : log_(&log), tag_base_(tag_base) {}

  std::uint32_t load(Cell<Plat>& c) {
    const std::uint64_t agreed = agree(c.raw_load());
    return cell_value(agreed);
  }

  void store(Cell<Plat>& c, std::uint32_t v) {
    const std::uint32_t op = consume_op();
    const std::uint64_t old = log_->agree(slot_for(op, 0), c.raw_load());
    const std::uint64_t desired = cell_pack(v, tag_for(op));
    WFL_DASSERT(old != desired);
    c.raw_cas(old, desired);  // single shot; failure means already done
  }

  bool cas(Cell<Plat>& c, std::uint32_t expected, std::uint32_t desired_v) {
    const std::uint32_t op = consume_op();
    const std::uint64_t cur = log_->agree(slot_for(op, 0), c.raw_load());
    if (cell_value(cur) != expected) {
      return false;  // same agreed word in every run => same branch
    }
    const std::uint64_t desired = cell_pack(desired_v, tag_for(op));
    std::uint64_t vote = kOutcomeFalse;
    if (c.raw_cas(cur, desired)) {
      vote = kOutcomeTrue;
    } else if (c.raw_load() == desired) {
      vote = kOutcomeTrue;  // another run of this very op installed it
    }
    const std::uint64_t outcome = log_->agree(slot_for(op, 1), vote);
    return outcome == kOutcomeTrue;
  }

  // Agree on a run-local nondeterministic value (e.g. a random draw). The
  // value must not equal kCellEmptySlot.
  std::uint64_t once(std::uint64_t v) { return agree(v); }

  // Bounded-retry store for racy (group-locking) cells where concurrent
  // instrumented writers outside this thunk are allowed. Returns false if
  // the write could not be applied within max_rounds (callers choose
  // max_rounds >= the interference bound, e.g. the point contention).
  bool store_racy(Cell<Plat>& c, std::uint32_t v, int max_rounds) {
    for (int r = 0; r < max_rounds; ++r) {
      const std::uint32_t op = consume_op();
      const std::uint64_t old = log_->agree(slot_for(op, 0), c.raw_load());
      const std::uint64_t desired = cell_pack(v, tag_for(op));
      if (old == desired) return true;  // an earlier round already landed
      std::uint64_t vote = kOutcomeFalse;
      if (c.raw_cas(old, desired)) {
        vote = kOutcomeTrue;
      } else if (c.raw_load() == desired) {
        vote = kOutcomeTrue;
      }
      if (log_->agree(slot_for(op, 1), vote) == kOutcomeTrue) return true;
    }
    return false;
  }

  std::uint32_t ops_used() const { return pos_; }

 private:
  std::uint32_t consume_op() {
    WFL_CHECK_MSG(pos_ < kMaxThunkOps,
                  "thunk exceeded kMaxThunkOps instrumented operations");
    return pos_++;
  }

  static std::uint32_t slot_for(std::uint32_t op, std::uint32_t which) {
    return 2 * op + which;
  }

  std::uint32_t tag_for(std::uint32_t op) const {
    // Never emits the initial tag 0 for ANY serial, wrap included, and
    // stays injective within a 2^32-1 window of flattened operation
    // indices — see the idem_tag contract above.
    return idem_tag(tag_base_, op);
  }

  std::uint64_t agree(std::uint64_t v) {
    const std::uint32_t op = consume_op();
    return log_->agree(slot_for(op, 0), v);
  }

  ThunkLog<Plat>* log_;
  std::uint32_t pos_ = 0;
  std::uint32_t tag_base_;
};

}  // namespace wfl
