// Idempotent memory cells.
//
// A Cell is one 64-bit atomic word packing (value:32, tag:32). Every value
// installed by an idempotent store/CAS carries a tag that is unique to the
// (thunk, operation-index) that produced it, so:
//   * a raw word never recurs once replaced (no ABA), which makes
//     single-shot CAS against an *agreed* expected word exact, and
//   * duplicate physical attempts by helpers replaying the same operation
//     are CASes to the identical word from the identical expected word —
//     at most one can take effect, the rest fail harmlessly.
//
// The 32-bit value restriction is deliberate (DESIGN.md §3.4): applications
// store pool indices, account balances, versioned small scalars — not raw
// pointers. Tags come from a 32-bit space; a tag can recur only after ~2^32
// instrumented writes, and harming correctness additionally requires a
// helper stalled across that entire span holding the exact colliding word —
// the same class of bounded-assumption the paper makes for priorities
// (footnote 3: a poly(P) priority range suffices).
#pragma once

#include <cstdint>

namespace wfl {

inline constexpr std::uint64_t kCellEmptySlot = 0xFFFFFFFFFFFFFFFFull;
inline constexpr std::uint32_t kCellInitTag = 0;

constexpr std::uint64_t cell_pack(std::uint32_t value, std::uint32_t tag) {
  return (static_cast<std::uint64_t>(tag) << 32) | value;
}
constexpr std::uint32_t cell_value(std::uint64_t word) {
  return static_cast<std::uint32_t>(word & 0xFFFFFFFFu);
}
constexpr std::uint32_t cell_tag(std::uint64_t word) {
  return static_cast<std::uint32_t>(word >> 32);
}

// Shared cell accessed from critical sections through IdemCtx. Direct
// accessors exist for initialization and for validation in tests/benches
// (quiescent reads); algorithm code never uses them on shared paths.
template <typename Plat>
class Cell {
 public:
  Cell() { word_.init(cell_pack(0, kCellInitTag)); }
  explicit Cell(std::uint32_t v) { word_.init(cell_pack(v, kCellInitTag)); }

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  // Quiescent (setup/validation) access; not for concurrent algorithm code.
  void init(std::uint32_t v) { word_.init(cell_pack(v, kCellInitTag)); }
  std::uint32_t peek() const { return cell_value(word_.peek()); }

  // Raw word access used by the idempotence runner (each call is one step).
  std::uint64_t raw_load() const { return word_.load(); }
  bool raw_cas(std::uint64_t expected, std::uint64_t desired) {
    return word_.cas(expected, desired);
  }

  // Stepped value read *outside* any thunk — e.g. optimistic traversals
  // that later re-validate inside a critical section. Not idempotent.
  std::uint32_t load_direct() const { return cell_value(word_.load()); }

 private:
  typename Plat::template Atomic<std::uint64_t> word_;
};

}  // namespace wfl
