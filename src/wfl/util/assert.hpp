// Invariant checking for wflock.
//
// WFL_CHECK is always on (release included): the library's wait-freedom and
// safety arguments rely on structural invariants (bounded pools, bounded
// loops, status state machines); violating one silently would turn a proof
// bug into undefined behaviour. The cost is a predictable branch.
//
// WFL_DASSERT compiles away outside debug builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wfl {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "wfl: invariant violated: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace wfl

#define WFL_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) ::wfl::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define WFL_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::wfl::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define WFL_DASSERT(expr) ((void)0)
#else
#define WFL_DASSERT(expr) WFL_CHECK(expr)
#endif
