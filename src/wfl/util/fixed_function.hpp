// FixedFunction: a move-only callable with inline storage and no heap.
//
// Lock thunks (critical sections) are stored inside lock descriptors and
// executed concurrently by helpers, so they must not allocate and must be
// trivially relocatable into descriptor slots. std::function cannot promise
// either; this can.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "wfl/util/assert.hpp"

namespace wfl {

template <typename Signature, std::size_t Capacity = 64>
class FixedFunction;

template <typename R, typename... Args, std::size_t Capacity>
class FixedFunction<R(Args...), Capacity> {
 public:
  FixedFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FixedFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  FixedFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable too large for FixedFunction inline storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (storage_) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
    };
    manage_ = [](void* dst, void* src, Op op) {
      switch (op) {
        case Op::kMove:
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
          break;
        case Op::kDestroy:
          static_cast<Fn*>(dst)->~Fn();
          break;
      }
    };
  }

  FixedFunction(FixedFunction&& other) noexcept { move_from(other); }

  FixedFunction& operator=(FixedFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  FixedFunction(const FixedFunction&) = delete;
  FixedFunction& operator=(const FixedFunction&) = delete;

  ~FixedFunction() { reset(); }

  void reset() {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr, Op::kDestroy);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    WFL_CHECK_MSG(invoke_ != nullptr, "calling empty FixedFunction");
    // const_cast: the stored callable may be mutable; constness of the
    // wrapper tracks the slot, not the callable (same stance as
    // std::move_only_function).
    return invoke_(const_cast<void*>(static_cast<const void*>(storage_)),
                   std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(void*, void*, Op);

  void move_from(FixedFunction& other) {
    if (other.manage_ != nullptr) {
      other.manage_(storage_, other.storage_, Op::kMove);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace wfl
