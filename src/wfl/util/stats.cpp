#include "wfl/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "wfl/util/assert.hpp"

namespace wfl {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double limit, std::size_t buckets)
    : limit_(limit),
      width_(limit / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  WFL_CHECK(limit > 0 && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0) x = 0;
  if (x >= limit_) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(x / width_)];
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = static_cast<double>(total_) * p / 100.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Midpoint of bucket: close enough for reporting.
      return (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return limit_;  // answered by the overflow bucket
}

double SuccessRate::rate() const {
  if (trials_ == 0) return 0.0;
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

double SuccessRate::wilson_lower(double z) const {
  if (trials_ == 0) return 0.0;
  const double n = static_cast<double>(trials_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (center - margin) / denom);
}

double SuccessRate::wilson_upper(double z) const {
  if (trials_ == 0) return 1.0;
  const double n = static_cast<double>(trials_);
  const double p = rate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::min(1.0, (center + margin) / denom);
}

double fit_log_log_slope(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  WFL_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  WFL_CHECK(n >= 2);
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  WFL_CHECK(denom != 0.0);
  return (dn * sxy - sx * sy) / denom;
}

std::string format_si(double v) {
  char buf[32];
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  std::snprintf(buf, sizeof(buf), "%.3g%s", scaled, suffix);
  return buf;
}

}  // namespace wfl
