// Lock-free scheduler plumbing: a Chase–Lev work-stealing deque and an
// MPSC injector stack (the run-queue core of core/async_executor.hpp).
//
// Both structures are executor infrastructure — raw std::atomic outside
// the paper's step model, like the rest of the async plumbing (DESIGN.md
// substitution #2) — and every weakened-order operation is annotated with
// its Site in check/ordering_contracts.hpp so CheckedPlat's ordering
// audit covers them (the contracts quote the soundness arguments; the
// long-form versions live in DESIGN.md §8).
//
// ChaseLevDeque<T*> (Chase & Lev 2005, memory orders per Lê et al. 2013,
// "Correct and Efficient Work-Stealing for Weak Memory Models"):
//
//   * ONE owner thread may push()/take() at the bottom; any thread may
//     steal() at the top. The owner's path is CAS-free except when it
//     races a thief for the last element.
//   * The ring is a power-of-two circular buffer indexed by untruncated
//     64-bit top/bottom counters. push() grows the ring when full, so an
//     in-range index can never alias a concurrent wrap; retired rings are
//     kept until destruction (total memory < 2x the final ring) so a
//     thief holding a stale ring pointer still dereferences valid — if
//     superseded — slots, and the top CAS discards its stale read.
//   * take() reserves bottom-1 with a relaxed store, then a seq_cst
//     fence, then reads top; steal() reads top (acquire), then a seq_cst
//     fence, then bottom (acquire). The two fences are a Dekker: at most
//     one side can miss the other's write, so owner and thief can both
//     believe the deque non-empty only when it holds >= 2 elements — and
//     the single-element race is settled by the seq_cst CAS on top.
//
// MpscInjector<T> (intrusive Treiber stack + single-consumer FIFO cache):
//
//   * push() is multi-producer and lock-free: write the node's q_next,
//     CAS the head. ABA-immune because push never dereferences the head
//     it observed — a stale head value just loses the CAS.
//   * The consumer side is SINGLE-consumer by external discipline (each
//     executor worker owns its inbox; the inline injector is guarded by
//     a claim-or-skip latch). pop() exchanges the whole batch out with
//     exchange(nullptr) and reverses it into a private FIFO cache — the
//     consumer never CASes a head it read, so there is no pop-side ABA
//     window at all (the classic Treiber pop bug this shape deletes).
//   * drain_all() is the one MULTI-consumer entry point: any thread may
//     exchange the shared head out (work stealing from a descheduled
//     owner's inbox). Concurrent drains obtain disjoint chains — the
//     exchange is atomic and never dereferences — and the owner's
//     private FIFO cache is untouched, so pop()'s single-consumer
//     discipline is unaffected. The cost: items drained by a thief are
//     ordered by the thief, so cross-queue FIFO is best-effort (it
//     already was: the owner's cache vs. fresh pushes race the same way).
//   * push's CAS and the consumer's pre-sleep empty() probe are seq_cst:
//     they form the producer half of the executor's sleep Dekker
//     (push-then-check-worker-state vs. set-idle-then-probe-inbox).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "wfl/check/race.hpp"
#include "wfl/fuzz/sites.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

namespace detail {
template <typename P>
std::uint64_t ptr_bits(P* p) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
}
}  // namespace detail

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>,
                "ChaseLevDeque stores pointers (slots are atomic words; "
                "a discarded stale read must be harmless)");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : ring_(new Ring(round_up_pow2(initial_capacity))) {
    race::created(&top_, 0);
    race::created(&bottom_, 0);
    race::created(&ring_, detail::ptr_bits(ring_.load()));
  }

  // Destruction requires quiescence (no concurrent owner or thieves) —
  // the executor joins its workers first.
  ~ChaseLevDeque() {
    Ring* r = ring_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Ring* prev = r->prev;
      delete r;
      r = prev;
    }
    race::destroyed(&top_);
    race::destroyed(&bottom_);
    race::destroyed(&ring_);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  // Owner only. Never fails; grows the ring when full.
  void push(T x) {
    const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&bottom_, kLoad, relaxed, kWqBottomOwnLoad, b);
    const std::uint64_t t = top_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&top_, kLoad, acquire, kWqTopLoad, t);
    Ring* r = ring_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&ring_, kLoad, acquire, kWqRingLoad, detail::ptr_bits(r));
    if (b - t >= r->cap) r = grow(r, t, b);
    r->at(b).store(x, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&r->at(b), kStore, relaxed, kWqSlot, detail::ptr_bits(x));
    bottom_.store(b + 1, std::memory_order_release);
    WFL_CHK_ATOMIC(&bottom_, kStore, release, kWqBottomPublish, b + 1);
  }

  // Owner only. LIFO (newest first — cache warmth; the steal side is the
  // FIFO end). Returns nullptr when empty.
  T take() {
    const std::uint64_t b =
        bottom_.load(std::memory_order_relaxed) - 1;
    WFL_CHK_ATOMIC(&bottom_, kLoad, relaxed, kWqBottomOwnLoad, b + 1);
    Ring* r = ring_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&ring_, kLoad, acquire, kWqRingLoad, detail::ptr_bits(r));
    bottom_.store(b, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&bottom_, kStore, relaxed, kWqBottomReserve, b);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    WFL_CHK_FENCE(seq_cst, kWqFence);
    std::uint64_t t = top_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&top_, kLoad, acquire, kWqTopLoad, t);
    T x = nullptr;
    if (static_cast<std::int64_t>(t) <= static_cast<std::int64_t>(b)) {
      x = r->at(b).load(std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&r->at(b), kLoad, relaxed, kWqSlot,
                     detail::ptr_bits(x));
      if (t == b) {
        // Last element: race the thieves for it on top.
        if (top_.compare_exchange_strong(t, t + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
          WFL_CHK_ATOMIC(&top_, kCasOk, seq_cst, kWqTopCas, b + 1);
        } else {
          WFL_CHK_ATOMIC(&top_, kCasFail, seq_cst, kWqTopCas, t);
          x = nullptr;  // a thief won it
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&bottom_, kStore, relaxed, kWqBottomReserve, b + 1);
      }
    } else {
      // Empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&bottom_, kStore, relaxed, kWqBottomReserve, b + 1);
    }
    return x;
  }

  // Any thread. FIFO (oldest first). Returns nullptr when empty OR when
  // it lost the top CAS to a rival — a lost race means the element went
  // to someone, so callers treat nullptr as "try the next victim".
  T steal() {
    std::uint64_t t = top_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&top_, kLoad, acquire, kWqTopLoad, t);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    WFL_CHK_FENCE(seq_cst, kWqFence);
    const std::uint64_t b = bottom_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&bottom_, kLoad, acquire, kWqBottomStealLoad, b);
    if (static_cast<std::int64_t>(t) >= static_cast<std::int64_t>(b)) {
      return nullptr;  // empty
    }
    Ring* r = ring_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&ring_, kLoad, acquire, kWqRingLoad, detail::ptr_bits(r));
    T x = r->at(t).load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&r->at(t), kLoad, relaxed, kWqSlot, detail::ptr_bits(x));
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      WFL_CHK_ATOMIC(&top_, kCasFail, seq_cst, kWqTopCas, t);
      return nullptr;  // lost to the owner or another thief
    }
    WFL_CHK_ATOMIC(&top_, kCasOk, seq_cst, kWqTopCas, t + 1);
    return x;
  }

  // Owner-side size estimate (exact for the owner between its own ops;
  // a lower bound otherwise — thieves only shrink it).
  std::size_t size_approx() const {
    const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&bottom_, kLoad, relaxed, kWqBottomOwnLoad, b);
    const std::uint64_t t = top_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&top_, kLoad, acquire, kWqTopLoad, t);
    const auto d = static_cast<std::int64_t>(b) - static_cast<std::int64_t>(t);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

  std::size_t capacity() const {
    return static_cast<std::size_t>(
        ring_.load(std::memory_order_acquire)->cap);
  }
  std::uint64_t grows() const { return grows_; }

 private:
  struct Ring {
    explicit Ring(std::uint64_t c)
        : cap(c), mask(c - 1), slots(new std::atomic<T>[c]()) {
      for (std::uint64_t i = 0; i < cap; ++i) race::created(&slots[i], 0);
    }
    ~Ring() {
      for (std::uint64_t i = 0; i < cap; ++i) race::destroyed(&slots[i]);
      delete[] slots;
    }
    std::atomic<T>& at(std::uint64_t i) { return slots[i & mask]; }

    const std::uint64_t cap;
    const std::uint64_t mask;
    std::atomic<T>* slots;
    Ring* prev = nullptr;  // retired predecessor, freed at destruction
  };

  static std::uint64_t round_up_pow2(std::size_t n) {
    std::uint64_t c = 2;
    while (c < n) c <<= 1;
    return c;
  }

  // Owner only (from push). Copies the live window [t, b) and publishes
  // the new ring; the old one stays linked for stale thief reads.
  Ring* grow(Ring* r, std::uint64_t t, std::uint64_t b) {
    Ring* nr = new Ring(r->cap * 2);
    for (std::uint64_t i = t; i != b; ++i) {
      const T v = r->at(i).load(std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&r->at(i), kLoad, relaxed, kWqSlot, detail::ptr_bits(v));
      nr->at(i).store(v, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&nr->at(i), kStore, relaxed, kWqSlot,
                     detail::ptr_bits(v));
    }
    nr->prev = r;
    ring_.store(nr, std::memory_order_release);
    WFL_CHK_ATOMIC(&ring_, kStore, release, kWqRingPublish,
                   detail::ptr_bits(nr));
    ++grows_;
    return nr;
  }

  std::atomic<std::uint64_t> top_{0};
  std::atomic<std::uint64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::uint64_t grows_ = 0;  // owner-only bookkeeping
};

// Intrusive MPSC stack: T must expose `std::atomic<T*> q_next`.
template <typename T>
class MpscInjector {
 public:
  MpscInjector() { race::created(&head_, 0); }

  // Destruction requires quiescence; pending nodes are the caller's to
  // drain (the executor's shutdown empties every queue first).
  ~MpscInjector() { race::destroyed(&head_); }

  MpscInjector(const MpscInjector&) = delete;
  MpscInjector& operator=(const MpscInjector&) = delete;

  // Any thread. Lock-free; ABA-immune (never dereferences the observed
  // head). seq_cst: the producer half of the executor's sleep Dekker.
  void push(T* n) {
    T* h = head_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&head_, kLoad, seq_cst, kInjPushCas, detail::ptr_bits(h));
    for (;;) {
      n->q_next.store(h, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&n->q_next, kStore, relaxed, kInjNext,
                     detail::ptr_bits(h));
      if (head_.compare_exchange_weak(h, n, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
        WFL_CHK_ATOMIC(&head_, kCasOk, seq_cst, kInjPushCas,
                       detail::ptr_bits(n));
        return;
      }
      WFL_CHK_ATOMIC(&head_, kCasFail, seq_cst, kInjPushCas,
                     detail::ptr_bits(h));
    }
  }

  // SINGLE consumer (external discipline). FIFO per producer: the first
  // empty-cache pop exchanges the whole pushed batch out and reverses it.
  T* pop() {
    if (fifo_ == nullptr) {
      T* batch = head_.exchange(nullptr, std::memory_order_acq_rel);
      WFL_CHK_ATOMIC(&head_, kExchange, acq_rel, kInjTakeAll, 0);
      while (batch != nullptr) {
        T* next = batch->q_next.load(std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&batch->q_next, kLoad, relaxed, kInjNext,
                       detail::ptr_bits(next));
        batch->q_next.store(fifo_, std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&batch->q_next, kStore, relaxed, kInjNext,
                       detail::ptr_bits(fifo_));
        fifo_ = batch;
        batch = next;
      }
    }
    T* n = fifo_;
    if (n != nullptr) {
      T* next = n->q_next.load(std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&n->q_next, kLoad, relaxed, kInjNext,
                     detail::ptr_bits(next));
      fifo_ = next;
      n->q_next.store(nullptr, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&n->q_next, kStore, relaxed, kInjNext, 0);
    }
    return n;
  }

  // ANY thread: take the whole shared stack in one exchange, leaving the
  // owner's private cache alone. Returns the raw intrusive chain in push
  // (newest-first) order via q_next, or nullptr. This is the inbox-steal
  // hook: a thief rescuing work from a descheduled owner reverses the
  // chain itself. Same ABA-immunity as pop()'s batch take — the exchange
  // never dereferences what it read, and rival drains get disjoint
  // chains.
  T* drain_all() {
    T* chain = head_.exchange(nullptr, std::memory_order_acq_rel);
    WFL_CHK_ATOMIC(&head_, kExchange, acq_rel, kInjTakeAll,
                   detail::ptr_bits(chain));
    if (chain != nullptr) WFL_FUZZ_SITE(kSiteDrainAllRival);
    return chain;
  }

  // Consumer only: the pre-sleep probe. seq_cst head load — the worker
  // half of the sleep Dekker (ordered after the set-idle store).
  bool empty() const {
    if (fifo_ != nullptr) return false;
    T* h = head_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&head_, kLoad, seq_cst, kInjPeek, detail::ptr_bits(h));
    return h == nullptr;
  }

 private:
  std::atomic<T*> head_{nullptr};
  T* fifo_ = nullptr;  // consumer-private reversed batch
};

}  // namespace wfl
