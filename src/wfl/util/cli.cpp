#include "wfl/util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "wfl/util/assert.hpp"

namespace wfl {

struct Cli::Impl {
  std::map<std::string, std::string> values;
  std::set<std::string> consumed;
};

Cli::Cli(int argc, char** argv) : impl_(new Impl) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    WFL_CHECK_MSG(arg.rfind("--", 0) == 0, "flags must look like --name=value");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      impl_->values[arg] = "true";  // bare --flag means boolean true
    } else {
      impl_->values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

Cli::~Cli() { delete impl_; }

std::int64_t Cli::flag_int(const std::string& name, std::int64_t def) {
  impl_->consumed.insert(name);
  auto it = impl_->values.find(name);
  if (it == impl_->values.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::flag_double(const std::string& name, double def) {
  impl_->consumed.insert(name);
  auto it = impl_->values.find(name);
  if (it == impl_->values.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::flag_bool(const std::string& name, bool def) {
  impl_->consumed.insert(name);
  auto it = impl_->values.find(name);
  if (it == impl_->values.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::flag_string(const std::string& name, const std::string& def) {
  impl_->consumed.insert(name);
  auto it = impl_->values.find(name);
  if (it == impl_->values.end()) return def;
  return it->second;
}

void Cli::done() const {
  for (const auto& [k, v] : impl_->values) {
    if (impl_->consumed.count(k) == 0) {
      std::fprintf(stderr, "unknown flag --%s=%s\n", k.c_str(), v.c_str());
      std::exit(2);
    }
  }
}

}  // namespace wfl
