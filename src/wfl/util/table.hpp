// ASCII table writer used by every exp_* experiment binary, so the harness
// output reads like the rows of a paper table.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wfl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Convenience cell appenders; a row is complete when it has as many cells
  // as there are headers.
  Table& cell(const std::string& v);
  Table& cell(double v, int precision = 3);
  Table& cell(std::uint64_t v);
  Table& cell(std::uint32_t v);
  Table& cell(int v);
  void end_row();

  // Renders with column alignment to the given stream (default stdout).
  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
};

}  // namespace wfl
