// Deterministic, fast PRNGs.
//
// Priorities in the lock algorithm and schedules in the simulator must be
// reproducible from a seed, so we avoid std::random_device / global state.
// SplitMix64 is used to expand seeds; Xoshiro256** is the workhorse
// generator (passes BigCrush, 4 words of state, ~1ns per draw).
#pragma once

#include <cstdint>

namespace wfl {

// Seed expander; also a decent generator for short sequences.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Rejection-free multiply-shift (Lemire); the tiny
  // modulo bias of the plain multiply is irrelevant for bounds >> 2^-64 but
  // we keep the rejection loop for exactness in fairness experiments.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling on the top range to make the draw exactly uniform.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace wfl
