// Minimal stackful fiber on ucontext, plus a reusing pool.
//
// Two runtimes multiplex logical work onto fibers:
//
//   * the deterministic simulator (sim/sim.hpp) runs every logical process
//     as a fiber on one OS thread, so a "schedule" is simply the order in
//     which fibers are resumed — execution is bit-for-bit deterministic
//     given the schedule, which is what lets us play the paper's oblivious
//     adversarial scheduler exactly;
//   * the async executor (core/async_executor.hpp) runs each in-flight
//     submission's attempts on a fiber drawn from a pool, so an attempt
//     that must wait suspends instead of pinning an OS thread.
//
// The body is a FixedFunction, not a std::function: fibers are created and
// re-armed on submission paths where a per-arm heap allocation would
// dominate, and the bodies the runtimes install are small capture packs.
// reset() re-arms a finished fiber on its existing stack, which is what
// FiberPool trades in — the 128 KB stack allocation is the expensive part
// of a fiber, not the context.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "wfl/util/fixed_function.hpp"

namespace wfl {

class Fiber {
 public:
  // Capture budget for fiber bodies. Runtime bodies are {pointer, pointer}
  // packs; simulator test bodies capture a handful of references. Bodies
  // larger than this fail at compile time — bundle captures in a struct.
  using Body = FixedFunction<void(), 128>;

  explicit Fiber(Body body, std::size_t stack_bytes = 128 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches into the fiber; returns when the fiber yields or its body
  // returns. Must not be called on a finished fiber.
  void resume();

  // Called from inside a running fiber: suspends it and returns control to
  // the resume() caller.
  static void yield();

  bool finished() const { return finished_; }

  // Re-arms the fiber with a new body on the SAME stack. Legal only when
  // the fiber never started or its body returned (finished()) — a
  // suspended fiber still owns live frames on that stack.
  void reset(Body body);

  std::size_t stack_bytes() const { return stack_bytes_; }

  // The fiber currently executing on this thread, or nullptr.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();
  void arm();

  Body body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool finished_ = false;
  // AddressSanitizer fiber-switch bookkeeping (unused in plain builds):
  // the fiber's saved fake stack while it is switched out, and the stack
  // extent of whoever last resumed it (needed to switch back out).
  void* asan_save_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
};

// A bounded cache of finished fibers keyed by one stack size. acquire()
// re-arms an idle fiber when one exists (reusing its stack) and allocates
// otherwise; release() returns a finished fiber to the cache, destroying
// it instead when the cache is full. Thread-safe: the async executor's
// workers share one pool. created()/reused() expose the allocation-
// avoidance ratio the async bench reports.
class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_bytes = 128 * 1024,
                     std::size_t max_idle = 32)
      : stack_bytes_(stack_bytes), max_idle_(max_idle) {}

  std::unique_ptr<Fiber> acquire(Fiber::Body body);
  void release(std::unique_ptr<Fiber> fiber);

  std::uint64_t created() const;
  std::uint64_t reused() const;
  std::size_t idle() const;

 private:
  mutable std::mutex mu_;
  std::size_t stack_bytes_;
  std::size_t max_idle_;
  std::vector<std::unique_ptr<Fiber>> idle_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace wfl
