#include "wfl/util/table.hpp"

#include <algorithm>
#include <cinttypes>

#include "wfl/util/assert.hpp"

namespace wfl {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WFL_CHECK(!headers_.empty());
}

Table& Table::cell(const std::string& v) {
  WFL_CHECK_MSG(current_.size() < headers_.size(), "row has too many cells");
  current_.push_back(v);
  return *this;
}

Table& Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint32_t v) {
  return cell(static_cast<std::uint64_t>(v));
}

Table& Table::cell(int v) { return cell(static_cast<std::uint64_t>(v)); }

void Table::end_row() {
  WFL_CHECK_MSG(current_.size() == headers_.size(), "row is incomplete");
  rows_.push_back(std::move(current_));
  current_.clear();
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  print_row(headers_);
  std::fprintf(out, "|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    std::fputc('|', out);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace wfl
