// Shared-memory arena: the placement substrate for cross-process lock
// tables (DESIGN.md §10).
//
// A ShmArena is a fixed-size MAP_SHARED mapping with a small header and a
// monotone bump allocator. Everything placed in it is addressed by BYTE
// OFFSET from the arena base, never by pointer: each attaching process maps
// the region at whatever address the kernel hands it, so a raw pointer
// written by one process is garbage in every other. Offset<T> is the typed
// wrapper — an offset travels through shared memory, and each process
// resolves it against its own base.
//
// Two creation models:
//
//   * create_anon() — anonymous MAP_SHARED mapping, inherited across
//     fork(). The natural shape for the crash experiments: the parent
//     builds the table, forks workers, and SIGKILLs one; no filesystem
//     name to leak when a process dies.
//   * create_named()/attach_named() — POSIX shm_open objects for unrelated
//     processes. attach_named() spins briefly on the creator's ready flag
//     so an attacher never reads a half-built layout.
//
// The header carries magic + layout version (attach refuses a mismatched
// build) and a generation counter bumped by every attach — the table layer
// uses it to tag sessions so state from a previous incarnation can never be
// confused for a live one.
//
// Crash model: the arena itself has no recovery protocol. Creation is
// single-threaded and completes before ready is published; after that the
// arena is append-only (bump pointer) and all mutable state belongs to the
// structures placed inside it, which own their own crash stories.
#pragma once

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

#include "wfl/util/assert.hpp"

namespace wfl {

// Probe whether an OS process is alive. kill(pid, 0) delivers nothing but
// performs the existence + permission check: ESRCH means the pid is gone
// (or was recycled into a different session's process — the table layer
// guards against recycling with lease generations). EPERM means it exists
// but belongs to someone else; for our purposes that is "alive".
inline bool shm_pid_alive(int pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) == 0) return true;
  return errno == EPERM;
}

class ShmArena {
 public:
  static constexpr std::uint64_t kMagic = 0x31306d68736c6677ull;  // "wflshm01"
  static constexpr std::uint32_t kLayoutVersion = 1;
  static constexpr std::uint64_t kNullOffset = 0;

  struct Header {
    std::uint64_t magic;
    std::uint32_t layout_version;
    std::uint32_t pad_;
    std::uint64_t size;
    std::atomic<std::uint64_t> bump;        // next free byte offset
    std::atomic<std::uint64_t> generation;  // attach counter
    std::atomic<std::uint64_t> root;        // offset of the root object
    std::atomic<std::uint32_t> ready;       // creator publishes layout done
  };
  static_assert(std::is_trivially_destructible_v<Header>);

  ShmArena() = default;
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;
  ShmArena(ShmArena&& o) noexcept { move_from(o); }
  ShmArena& operator=(ShmArena&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  ~ShmArena() { reset(); }

  // Anonymous MAP_SHARED arena; survives fork() in all children.
  static ShmArena create_anon(std::size_t bytes) {
    ShmArena a;
    a.size_ = round_up(bytes, kPageSize);
    void* p = ::mmap(nullptr, a.size_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    WFL_CHECK_MSG(p != MAP_FAILED, "ShmArena: anonymous mmap failed");
    a.base_ = static_cast<char*>(p);
    a.init_header();
    return a;
  }

  // Named POSIX shm object (unlinked by the creator's destructor).
  static ShmArena create_named(const char* name, std::size_t bytes) {
    ShmArena a;
    a.size_ = round_up(bytes, kPageSize);
    int fd = ::shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
    WFL_CHECK_MSG(fd >= 0, "ShmArena: shm_open(O_CREAT) failed");
    WFL_CHECK(::ftruncate(fd, static_cast<off_t>(a.size_)) == 0);
    void* p = ::mmap(nullptr, a.size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
    ::close(fd);
    WFL_CHECK_MSG(p != MAP_FAILED, "ShmArena: mmap of shm object failed");
    a.base_ = static_cast<char*>(p);
    a.name_ = name;
    a.owner_ = true;
    a.init_header();
    return a;
  }

  static ShmArena attach_named(const char* name) {
    ShmArena a;
    int fd = ::shm_open(name, O_RDWR, 0600);
    WFL_CHECK_MSG(fd >= 0, "ShmArena: shm_open(attach) failed");
    // Map the header page first to learn the full size.
    void* hp = ::mmap(nullptr, kPageSize, PROT_READ, MAP_SHARED, fd, 0);
    WFL_CHECK_MSG(hp != MAP_FAILED, "ShmArena: header mmap failed");
    const Header* h = static_cast<const Header*>(hp);
    wait_ready(*h);
    WFL_CHECK_MSG(h->magic == kMagic, "ShmArena: bad magic");
    WFL_CHECK_MSG(h->layout_version == kLayoutVersion,
                  "ShmArena: layout version mismatch");
    a.size_ = h->size;
    ::munmap(hp, kPageSize);
    void* p = ::mmap(nullptr, a.size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
    ::close(fd);
    WFL_CHECK_MSG(p != MAP_FAILED, "ShmArena: full mmap failed");
    a.base_ = static_cast<char*>(p);
    a.header()->generation.fetch_add(1, std::memory_order_acq_rel);
    return a;
  }

  // A fork()ed child inherits the mapping itself; adopt() wraps the same
  // region without taking unmap ownership (the parent frame owns it).
  static ShmArena adopt(void* base, std::size_t size) {
    ShmArena a;
    a.base_ = static_cast<char*>(base);
    a.size_ = size;
    a.borrowed_ = true;
    const Header* h = a.header();
    wait_ready(*h);
    WFL_CHECK_MSG(h->magic == kMagic, "ShmArena: bad magic on adopt");
    WFL_CHECK_MSG(h->layout_version == kLayoutVersion,
                  "ShmArena: layout version mismatch on adopt");
    return a;
  }

  bool valid() const { return base_ != nullptr; }
  char* base() const { return base_; }
  std::size_t size() const { return size_; }
  Header* header() const { return reinterpret_cast<Header*>(base_); }

  // Bump-allocate raw bytes; returns the byte offset. Single-threaded in
  // practice (only the creator allocates), but the CAS keeps it honest.
  std::uint64_t alloc_bytes(std::size_t bytes, std::size_t align) {
    WFL_CHECK(align != 0 && (align & (align - 1)) == 0);
    Header* h = header();
    std::uint64_t cur = h->bump.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t off = round_up(cur, align);
      const std::uint64_t end = off + bytes;
      WFL_CHECK_MSG(end <= size_, "ShmArena: out of space");
      if (h->bump.compare_exchange_weak(cur, end, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        std::memset(base_ + off, 0, bytes);
        return off;
      }
    }
  }

  template <typename T>
  T* at(std::uint64_t off) const {
    WFL_DASSERT(off != kNullOffset && off + sizeof(T) <= size_);
    return reinterpret_cast<T*>(base_ + off);
  }

  // Allocate + default-construct an array of T; creator-side only. The
  // attacher never re-constructs: it casts the offset via at<T>().
  template <typename T>
  std::uint64_t create_array(std::size_t n) {
    const std::uint64_t off = alloc_bytes(sizeof(T) * n, alignof(T));
    T* p = reinterpret_cast<T*>(base_ + off);
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return off;
  }

  template <typename T, typename... Args>
  std::uint64_t create(Args&&... args) {
    const std::uint64_t off = alloc_bytes(sizeof(T), alignof(T));
    new (base_ + off) T(static_cast<Args&&>(args)...);
    return off;
  }

  void set_root(std::uint64_t off) {
    header()->root.store(off, std::memory_order_release);
  }
  std::uint64_t root() const {
    return header()->root.load(std::memory_order_acquire);
  }

  // Creator calls once layout construction is complete; attachers block on
  // it (bounded spin — creation is microseconds).
  void publish_ready() {
    header()->ready.store(1, std::memory_order_release);
  }

  std::uint64_t generation() const {
    return header()->generation.load(std::memory_order_acquire);
  }

  std::uint64_t offset_of(const void* p) const {
    WFL_DASSERT(p >= base_ && p < base_ + size_);
    return static_cast<std::uint64_t>(static_cast<const char*>(p) - base_);
  }

 private:
  static constexpr std::size_t kPageSize = 4096;

  static std::uint64_t round_up(std::uint64_t v, std::uint64_t a) {
    return (v + a - 1) & ~(a - 1);
  }

  static void wait_ready(const Header& h) {
    for (std::uint64_t spins = 0;
         h.ready.load(std::memory_order_acquire) == 0; ++spins) {
      WFL_CHECK_MSG(spins < (1u << 22), "ShmArena: creator never published");
      if ((spins & 0x3ff) == 0) ::usleep(100);
    }
  }

  void init_header() {
    Header* h = new (base_) Header();
    h->magic = kMagic;
    h->layout_version = kLayoutVersion;
    h->size = size_;
    h->bump.store(round_up(sizeof(Header), 64), std::memory_order_relaxed);
    h->generation.store(1, std::memory_order_relaxed);
    h->root.store(kNullOffset, std::memory_order_relaxed);
    h->ready.store(0, std::memory_order_relaxed);
  }

  void move_from(ShmArena& o) {
    base_ = o.base_;
    size_ = o.size_;
    name_ = o.name_;
    owner_ = o.owner_;
    borrowed_ = o.borrowed_;
    o.base_ = nullptr;
    o.name_ = nullptr;
    o.owner_ = false;
    o.borrowed_ = false;
  }

  void reset() {
    if (base_ != nullptr && !borrowed_) ::munmap(base_, size_);
    if (owner_ && name_ != nullptr) ::shm_unlink(name_);
    base_ = nullptr;
    name_ = nullptr;
    owner_ = false;
    borrowed_ = false;
  }

  char* base_ = nullptr;
  std::size_t size_ = 0;
  const char* name_ = nullptr;  // named variant: creator unlinks on destroy
  bool owner_ = false;
  bool borrowed_ = false;  // adopt(): mapping owned by another frame
};

// Typed offset: the only legal way to store a cross-process reference in
// shared memory. An Offset is just bytes; resolving it requires the local
// arena view.
template <typename T>
struct Offset {
  std::uint64_t raw = ShmArena::kNullOffset;

  bool null() const { return raw == ShmArena::kNullOffset; }
  T* in(const ShmArena& a) const { return null() ? nullptr : a.at<T>(raw); }
  static Offset of(const ShmArena& a, const T* p) {
    return Offset{a.offset_of(p)};
  }
};

}  // namespace wfl
