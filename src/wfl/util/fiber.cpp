#include "wfl/util/fiber.hpp"

#include <cstdint>
#include <utility>

#include "wfl/check/race.hpp"
#include "wfl/util/assert.hpp"

// ASan cannot follow ucontext switches by itself: every switch must report
// the destination stack (start) and re-establish the fake-stack state on
// arrival (finish), or stack-use-after-return shadows go stale and the
// first deep frame on a reused fiber stack is reported as an overflow.
#if defined(__SANITIZE_ADDRESS__)
#define WFL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WFL_ASAN_FIBERS 1
#endif
#endif

#if defined(WFL_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#define WFL_FIBER_SWITCH_START(save, bottom, size) \
  __sanitizer_start_switch_fiber((save), (bottom), (size))
#define WFL_FIBER_SWITCH_FINISH(save, bottom, size) \
  __sanitizer_finish_switch_fiber((save), (bottom), (size))
#else
#define WFL_FIBER_SWITCH_START(save, bottom, size) ((void)0)
#define WFL_FIBER_SWITCH_FINISH(save, bottom, size) ((void)0)
#endif

namespace wfl {

namespace {
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current_fiber; }

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  WFL_CHECK(static_cast<bool>(body_));
  arm();
}

void Fiber::arm() {
  // The armer claims the whole stack: any prior generation's frames (pool
  // reuse) must be happens-before ordered with this re-arm.
  WFL_PLAIN_WRITE(stack_.get(), kFiberStack);
  WFL_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = &return_ctx_;  // body return falls back to the resumer
  // makecontext only passes ints; smuggle the this-pointer as two halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xFFFFFFFFu));
  started_ = false;
  finished_ = false;
}

void Fiber::reset(Body body) {
  WFL_CHECK_MSG(finished_ || !started_,
                "reset() on a suspended fiber (live frames on its stack)");
  WFL_CHECK(static_cast<bool>(body));
  body_ = std::move(body);
  arm();
}

Fiber::~Fiber() {
  // Destroying a suspended (unfinished) fiber leaks whatever its stack owns;
  // the runtimes only destroy fibers after draining them or at teardown,
  // where that is acceptable by construction.
  race::destroyed(stack_.get());  // retire the region: heap reuse != reuse
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run_body();
}

void Fiber::run_body() {
  // First activation: complete the switch that brought us here and learn
  // the resumer's stack extent (needed to switch back out).
  WFL_FIBER_SWITCH_FINISH(nullptr, &asan_caller_bottom_, &asan_caller_size_);
  body_();
  finished_ = true;
  // uc_link returns to return_ctx_ (the most recent resume()). Passing a
  // null save slot tells ASan this fiber is dying: free its fake stack.
  WFL_FIBER_SWITCH_START(nullptr, asan_caller_bottom_, asan_caller_size_);
}

void Fiber::resume() {
  WFL_CHECK_MSG(!finished_, "resume() on a finished fiber");
  Fiber* prev = g_current_fiber;
  g_current_fiber = this;
  started_ = true;
  void* save = nullptr;
  WFL_FIBER_SWITCH_START(&save, stack_.get(), stack_bytes_);
  WFL_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
  WFL_FIBER_SWITCH_FINISH(save, nullptr, nullptr);
  g_current_fiber = prev;
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  WFL_CHECK_MSG(self != nullptr, "Fiber::yield() outside a fiber");
  WFL_FIBER_SWITCH_START(&self->asan_save_, self->asan_caller_bottom_,
                         self->asan_caller_size_);
  WFL_CHECK(swapcontext(&self->ctx_, &self->return_ctx_) == 0);
  // Resumed again, possibly by a different caller: refresh its extent.
  WFL_FIBER_SWITCH_FINISH(self->asan_save_, &self->asan_caller_bottom_,
                          &self->asan_caller_size_);
}

std::unique_ptr<Fiber> FiberPool::acquire(Fiber::Body body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    race::mutex_acquire(&mu_);
    if (!idle_.empty()) {
      std::unique_ptr<Fiber> f = std::move(idle_.back());
      idle_.pop_back();
      ++reused_;
      f->reset(std::move(body));
      race::mutex_release(&mu_);
      return f;
    }
    ++created_;
    race::mutex_release(&mu_);
  }
  return std::make_unique<Fiber>(std::move(body), stack_bytes_);
}

void FiberPool::release(std::unique_ptr<Fiber> fiber) {
  WFL_CHECK_MSG(fiber->finished(), "released fiber still has live frames");
  std::lock_guard<std::mutex> lk(mu_);
  race::mutex_acquire(&mu_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(fiber));
  // else: drop — the unique_ptr frees the stack.
  race::mutex_release(&mu_);
}

std::uint64_t FiberPool::created() const {
  std::lock_guard<std::mutex> lk(mu_);
  return created_;
}

std::uint64_t FiberPool::reused() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reused_;
}

std::size_t FiberPool::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return idle_.size();
}

}  // namespace wfl
