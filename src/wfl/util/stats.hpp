// Statistics helpers for the experiment harnesses.
//
// Everything here is deterministic and allocation-light; experiments feed
// millions of samples through RunningStat/Histogram and then print summary
// tables. Wilson intervals give conservative lower bounds when we check
// success probabilities against the paper's 1/C_p fairness bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wfl {

// Welford running mean/variance; O(1) memory.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram over [0, limit) with overflow bucket; supports
// exact-enough percentiles for step-count distributions.
class Histogram {
 public:
  Histogram(double limit, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }
  double percentile(double p) const;  // p in [0,100]
  std::uint64_t overflow() const { return overflow_; }

 private:
  double limit_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

// Bernoulli success counter with Wilson score interval.
class SuccessRate {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }
  void merge(const SuccessRate& o) {
    trials_ += o.trials_;
    successes_ += o.successes_;
  }

  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }
  double rate() const;
  // Wilson score interval bounds at confidence given by z (z=2.576 ~ 99%).
  double wilson_lower(double z = 2.576) const;
  double wilson_upper(double z = 2.576) const;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

// Least-squares slope of log(y) on log(x): the fitted exponent b in
// y = a * x^b. Used to check the κ and L exponents of the step bounds.
double fit_log_log_slope(const std::vector<double>& xs,
                         const std::vector<double>& ys);

std::string format_si(double v);  // 12.3k / 4.56M style

}  // namespace wfl
