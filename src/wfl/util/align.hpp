// Cache-line alignment helpers.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace wfl {

// Hard-code 64 rather than std::hardware_destructive_interference_size: the
// latter is an ABI hazard (GCC warns when it leaks into public types) and 64
// is correct on every platform we target.
inline constexpr std::size_t kCacheLine = 64;

// Pads T to a cache line to prevent false sharing between adjacent elements
// of per-process arrays (step counters, announcement slots, stats).
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value;

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace wfl
