// Minimal --flag=value parser for experiment binaries.
//
// Experiments must run unattended with sensible defaults (`for b in
// build/bench/*; do $b; done`), so flags only override defaults and unknown
// flags are fatal (catching typos in scripted sweeps).
#pragma once

#include <cstdint>
#include <string>

namespace wfl {

class Cli {
 public:
  Cli(int argc, char** argv);
  ~Cli();

  std::int64_t flag_int(const std::string& name, std::int64_t def);
  double flag_double(const std::string& name, double def);
  bool flag_bool(const std::string& name, bool def);
  std::string flag_string(const std::string& name, const std::string& def);

  // Call after all flag_* lookups: aborts on unrecognized flags.
  void done() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace wfl
