// Epoch-based reclamation with explicit participant handles.
//
// Helpers may hold references to another attempt's descriptor or to a
// replaced set snapshot long after the owner moved on, so freeing must wait
// for a grace period. Classic 3-epoch EBR; the one twist is that
// participants are explicit handles rather than thread_locals, because a
// "process" here can be either an OS thread (RealPlat) or a simulator fiber
// (SimPlat) — many fibers share one thread.
//
// Safety contract: retire(obj) must be called only after obj is unreachable
// from shared memory. Then any guard that can still hold a reference was
// entered at an epoch <= the epoch observed by retire(); such a guard blocks
// the global epoch below observed+2, so freeing at observed+2 is safe.
//
// Reclamation is not part of the algorithms' step accounting (DESIGN.md
// substitution #2): all internals are raw std::atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "wfl/check/race.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/shm.hpp"

namespace wfl {

class EbrDomain {
 public:
  using Deleter = void (*)(void* ctx, std::uint32_t handle);

  explicit EbrDomain(int max_participants)
      : parts_(static_cast<std::size_t>(max_participants)) {
    WFL_CHECK(max_participants > 0);
    // Lifetime hooks: domains are heap members of LockTables, so their raw
    // atomics land on reused addresses across table generations; reset the
    // analysis layer's shadow state at construction.
    race::created(&global_epoch_, 0);
    race::created(&next_participant_, 0);
  }

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  ~EbrDomain() {
    // Domain teardown implies quiescence; drain everything unconditionally.
    for (auto& padded : parts_) {
      Participant& p = *padded;
      WFL_CHECK_MSG(!p.active.load(std::memory_order_relaxed),
                    "EbrDomain destroyed while a participant holds a guard");
      for (auto& bucket : p.buckets) {
        for (const Retired& r : bucket.items) r.deleter(r.ctx, r.handle);
        bucket.items.clear();
      }
    }
    race::destroyed(&global_epoch_);
    race::destroyed(&next_participant_);
  }

  int register_participant() {
    const int id = next_participant_.fetch_add(1, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&next_participant_, kFetchAdd, relaxed,
                   kEbrParticipantCount, id + 1);
    WFL_CHECK_MSG(id < static_cast<int>(parts_.size()),
                  "EbrDomain participant capacity exceeded");
    return id;
  }

  // Announce-then-verify, restructured for the guard hot path (an attempt
  // enters/exits every shard it touches around each work segment):
  //
  //   * ONE seq_cst fence at the publication point orders the relaxed
  //     active/epoch announcement stores before the seq_cst verify load.
  //     The either-or this buys: an advancer whose participant scan follows
  //     the fence in the SC order observes the announcement (fences order
  //     preceding relaxed stores against later seq_cst loads); an advancer
  //     whose CAS precedes the fence is observed by the verify load, which
  //     then re-announces at the new epoch. Either way a guard announced at
  //     epoch e is seen by every advance attempt from e+1 on, so it blocks
  //     the global epoch below e+2 exactly as before.
  //   * the epoch re-announce is SKIPPED when the global epoch still equals
  //     the participant's previous announcement (the common case between
  //     collects): the stored epoch word is already correct, so only the
  //     active flag and the fence are needed.
  //
  // While the re-announce loop runs, active is already true with a stale
  // epoch — that conservatively blocks advancement, so the loop settles
  // after at most one more epoch move. Validated by the TSan CI matrix and
  // the crash/chaos tests.
  void enter(int pid) {
    Participant& p = part(pid);
    WFL_CHECK_MSG(!p.active.load(std::memory_order_relaxed),
                  "EBR enter() while already in a critical region");
    p.active.store(true, std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&p.active, kStore, relaxed, kEbrAnnounce, 1);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // publication point
    WFL_CHK_FENCE(seq_cst, kEbrPublishFence);
    std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&global_epoch_, kLoad, seq_cst, kEbrVerifyLoad, e);
    const std::uint64_t mine = p.epoch.load(std::memory_order_relaxed);
    WFL_CHK_ATOMIC(&p.epoch, kLoad, relaxed, kEbrEpochSelfLoad, mine);
    if (e == mine) return;
    for (;;) {
      p.epoch.store(e, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&p.epoch, kStore, relaxed, kEbrEpochAnnounce, e);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      WFL_CHK_FENCE(seq_cst, kEbrPublishFence);
      const std::uint64_t e2 =
          global_epoch_.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&global_epoch_, kLoad, seq_cst, kEbrVerifyLoad, e2);
      if (e2 == e) return;
      e = e2;
    }
  }

  void exit(int pid) {
    Participant& p = part(pid);
    WFL_CHECK(p.active.load(std::memory_order_relaxed));
    // Release: the guard's critical-section reads are sequenced before this
    // store, and a collector's seq_cst scan that observes false acquires
    // it, so retired objects are freed only after our reads completed.
    p.active.store(false, std::memory_order_release);
    WFL_CHK_ATOMIC(&p.active, kStore, release, kEbrExit, 0);
  }

  // Crash support: drops `pid`'s guard (if held) on its behalf. ONLY legal
  // when the participant provably takes no further steps — a simulator
  // fiber that a CrashSchedule parked forever, or a joined thread. A guard
  // held by a genuinely running process must never be force-released: the
  // process may still dereference retired objects. Crash harnesses call
  // this before tearing the domain down; it also un-stalls reclamation for
  // any post-crash measurement phase.
  void abandon(int pid) {
    part(pid).active.store(false, std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&part(pid).active, kStore, seq_cst, kEbrAbandon, 0);
  }

  // Defers `deleter(ctx, handle)` until two epoch advances have passed since
  // the epoch observed here. See the safety contract above.
  void retire(int pid, void* ctx, std::uint32_t handle, Deleter deleter) {
    Participant& p = part(pid);
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&global_epoch_, kLoad, seq_cst, kEbrRetireEpochLoad, e);
    Bucket& b = p.buckets[e % kBuckets];
    if (!b.items.empty() && b.epoch != e) {
      // Same slot, older epoch: epochs sharing a slot differ by >= kBuckets,
      // so its contents are already past their grace period.
      WFL_CHECK(b.epoch + 2 <= e);
      drain(b);
    }
    b.epoch = e;
    b.items.push_back(Retired{ctx, handle, deleter});
    if (++p.retire_ops >= kCollectEvery) {
      p.retire_ops = 0;
      collect(pid);
    }
  }

  // Attempts an epoch advance, then frees this participant's safe buckets.
  void collect(int pid) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&global_epoch_, kLoad, seq_cst, kEbrCollectEpochLoad, e);
    if (all_participants_at(e)) {
      std::uint64_t expected = e;  // racing collectors: one advance per value
      const bool advanced = global_epoch_.compare_exchange_strong(
          expected, e + 1, std::memory_order_seq_cst);
      if (advanced) {
        WFL_CHK_ATOMIC(&global_epoch_, kCasOk, seq_cst, kEbrEpochAdvanceCas,
                       e + 1);
      } else {
        WFL_CHK_ATOMIC(&global_epoch_, kCasFail, seq_cst, kEbrEpochAdvanceCas,
                       expected);
      }
    }
    free_safe_buckets(pid);
  }

  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  class Guard {
   public:
    Guard(EbrDomain& d, int pid) : d_(&d), pid_(pid) { d_->enter(pid_); }
    ~Guard() {
      if (d_ != nullptr) d_->exit(pid_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain* d_;
    int pid_;
  };

 private:
  static constexpr int kBuckets = 3;
  static constexpr int kCollectEvery = 16;

  struct Retired {
    void* ctx;
    std::uint32_t handle;
    Deleter deleter;
  };

  struct Bucket {
    std::uint64_t epoch = 0;
    std::vector<Retired> items;
  };

  struct Participant {
    Participant() {
      race::created(&active, 0);
      race::created(&epoch, 0);
    }
    ~Participant() {
      race::destroyed(&active);
      race::destroyed(&epoch);
    }
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> epoch{0};
    Bucket buckets[kBuckets];
    int retire_ops = 0;
  };

  static void drain(Bucket& b) {
    for (const Retired& r : b.items) r.deleter(r.ctx, r.handle);
    b.items.clear();
  }

  Participant& part(int pid) {
    WFL_DASSERT(pid >= 0 && pid < static_cast<int>(parts_.size()));
    return *parts_[static_cast<std::size_t>(pid)];
  }

  bool all_participants_at(std::uint64_t e) const {
    const int n = next_participant_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&next_participant_, kLoad, acquire, kEbrParticipantCount,
                   n);
    for (int i = 0; i < n; ++i) {
      const Participant& p = *parts_[static_cast<std::size_t>(i)];
      const bool act = p.active.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&p.active, kLoad, seq_cst, kEbrScanActive, act ? 1 : 0);
      if (!act) continue;
      const std::uint64_t pe = p.epoch.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&p.epoch, kLoad, seq_cst, kEbrScanEpoch, pe);
      if (pe != e) return false;
    }
    return true;
  }

  void free_safe_buckets(int pid) {
    Participant& p = part(pid);
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    WFL_CHK_ATOMIC(&global_epoch_, kLoad, seq_cst, kEbrCollectEpochLoad, e);
    for (Bucket& b : p.buckets) {
      if (!b.items.empty() && b.epoch + 2 <= e) drain(b);
    }
  }

  std::vector<CachePadded<Participant>> parts_;
  // The globally-hammered epoch word gets its own line so advances don't
  // invalidate the registration counter's line (and vice versa).
  alignas(kCacheLine) std::atomic<std::uint64_t> global_epoch_{0};
  alignas(kCacheLine) std::atomic<int> next_participant_{0};
};

// --- Shared-memory EBR domain (DESIGN.md §10) ------------------------------
//
// The cross-process variant splits the domain in two:
//
//   * the LIVENESS state — global epoch, participant announcements — lives
//     in the ShmArena, because a guard held in one process must block
//     reclamation in every other;
//   * the RETIRED-object buckets stay process-local, because a deleter is a
//     function pointer plus a ctx pointer, neither of which survives an
//     address-space boundary. Retire/collect are per-participant and only
//     ever run in the owning process, so locality is free.
//
// The split decides the crash story: when a process dies by SIGKILL, its
// announced guard (shared) would pin the global epoch forever, and its
// pending retirements (local) vanish with the address space. The reaper
// fixes the former with abandon() — legal because a SIGKILLed process
// provably takes no further steps — and the latter is a bounded leak: at
// most one bucket-load of slots per crash, priced into the shm pools'
// fixed sizing exactly like the crashed pid's own retired-forever slots.
//
// Each shared participant additionally carries the liveness lease: the OS
// pid driving it and a heartbeat counter bumped by the owner on every
// attempt. Survivors detect a victim either way — a dead pid (probe via
// kill(0), instant and precise when pids are visible) or a stalled lease
// (no pid visibility needed, e.g. across containers; threshold picked by
// the harness). Detection lives here, recovery policy in the table layer.
struct alignas(kCacheLine) ShmEbrParticipant {
  std::atomic<std::uint32_t> active;
  std::atomic<std::uint64_t> epoch;
  std::atomic<int> os_pid;        // 0 = never bound
  std::atomic<std::uint64_t> lease;  // heartbeat counter, owner-bumped
};

struct ShmEbrShared {
  std::uint32_t max_participants;
  std::uint32_t pad_;
  std::uint64_t parts_off;  // ShmEbrParticipant[max_participants]
  alignas(kCacheLine) std::atomic<std::uint64_t> global_epoch;
  alignas(kCacheLine) std::atomic<int> next_participant;
};

class ShmEbrDomain {
 public:
  using Deleter = EbrDomain::Deleter;

  static std::uint64_t create_in(ShmArena& a, int max_participants) {
    WFL_CHECK(max_participants > 0);
    const std::uint64_t off = a.create<ShmEbrShared>();
    ShmEbrShared* sh = a.at<ShmEbrShared>(off);
    sh->max_participants = static_cast<std::uint32_t>(max_participants);
    sh->parts_off = a.create_array<ShmEbrParticipant>(
        static_cast<std::size_t>(max_participants));
    sh->global_epoch.store(0, std::memory_order_relaxed);
    sh->next_participant.store(0, std::memory_order_relaxed);
    return off;
  }

  ShmEbrDomain() = default;
  ShmEbrDomain(const ShmEbrDomain&) = delete;
  ShmEbrDomain& operator=(const ShmEbrDomain&) = delete;

  void attach(const ShmArena& a, std::uint64_t off) {
    sh_ = a.at<ShmEbrShared>(off);
    parts_ = a.at<ShmEbrParticipant>(sh_->parts_off);
    buckets_.resize(sh_->max_participants);
  }

  int register_participant() {
    const int id =
        sh_->next_participant.fetch_add(1, std::memory_order_acq_rel);
    WFL_CHECK_MSG(id < static_cast<int>(sh_->max_participants),
                  "ShmEbrDomain participant capacity exceeded");
    return id;
  }

  int participant_count() const {
    return sh_->next_participant.load(std::memory_order_acquire);
  }

  // Lease surface. bind_os_pid is called once at session open; heartbeat on
  // every attempt. Writes are owner-only, reads are anyone's.
  void bind_os_pid(int pid, int os_pid) {
    part(pid).os_pid.store(os_pid, std::memory_order_release);
    part(pid).lease.store(1, std::memory_order_release);
  }
  int os_pid(int pid) const {
    return part(pid).os_pid.load(std::memory_order_acquire);
  }
  void heartbeat(int pid) {
    std::atomic<std::uint64_t>& l = part(pid).lease;
    l.store(l.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }
  std::uint64_t lease(int pid) const {
    return part(pid).lease.load(std::memory_order_acquire);
  }

  // Guard protocol: identical announce-then-verify to EbrDomain (see the
  // long comment there); the fence/verify argument does not care which
  // process the announcing thread lives in.
  void enter(int pid) {
    ShmEbrParticipant& p = part(pid);
    WFL_CHECK_MSG(p.active.load(std::memory_order_relaxed) == 0,
                  "shm EBR enter() while already in a critical region");
    p.active.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t e = sh_->global_epoch.load(std::memory_order_seq_cst);
    if (e == p.epoch.load(std::memory_order_relaxed)) return;
    for (;;) {
      p.epoch.store(e, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::uint64_t e2 =
          sh_->global_epoch.load(std::memory_order_seq_cst);
      if (e2 == e) return;
      e = e2;
    }
  }

  void exit(int pid) {
    ShmEbrParticipant& p = part(pid);
    WFL_CHECK(p.active.load(std::memory_order_relaxed) != 0);
    p.active.store(0, std::memory_order_release);
  }

  // Same legality contract as EbrDomain::abandon — the participant must
  // take no further steps. For the shm domain that is established by the
  // reaper's waitpid/pid-probe evidence, not by in-process joining.
  void abandon(int pid) {
    part(pid).active.store(0, std::memory_order_seq_cst);
  }

  void retire(int pid, void* ctx, std::uint32_t handle, Deleter deleter) {
    const std::uint64_t e =
        sh_->global_epoch.load(std::memory_order_seq_cst);
    LocalBuckets& lb = buckets_[static_cast<std::size_t>(pid)];
    Bucket& b = lb.buckets[e % kBuckets];
    if (!b.items.empty() && b.epoch != e) {
      WFL_CHECK(b.epoch + 2 <= e);
      drain(b);
    }
    b.epoch = e;
    b.items.push_back(Retired{ctx, handle, deleter});
    if (++lb.retire_ops >= kCollectEvery) {
      lb.retire_ops = 0;
      collect(pid);
    }
  }

  void collect(int pid) {
    const std::uint64_t e =
        sh_->global_epoch.load(std::memory_order_seq_cst);
    if (all_participants_at(e)) {
      std::uint64_t expected = e;
      sh_->global_epoch.compare_exchange_strong(expected, e + 1,
                                                std::memory_order_seq_cst);
    }
    LocalBuckets& lb = buckets_[static_cast<std::size_t>(pid)];
    const std::uint64_t now =
        sh_->global_epoch.load(std::memory_order_seq_cst);
    for (Bucket& b : lb.buckets) {
      if (!b.items.empty() && b.epoch + 2 <= now) drain(b);
    }
  }

  std::uint64_t epoch() const {
    return sh_->global_epoch.load(std::memory_order_relaxed);
  }

  // Diagnostic: this process's not-yet-drained retirements for `pid` (the
  // crash experiments chart it to show reclaim keeps up with churn).
  std::size_t pending_retired(int pid) const {
    const LocalBuckets& lb = buckets_[static_cast<std::size_t>(pid)];
    std::size_t n = 0;
    for (const Bucket& b : lb.buckets) n += b.items.size();
    return n;
  }

  // Diagnostics for the reaper and the crash experiments: who is inside a
  // guard, and at which announced epoch. Racy snapshots, advisory only.
  bool participant_active(int pid) const {
    return part(pid).active.load(std::memory_order_seq_cst) != 0;
  }
  std::uint64_t participant_epoch(int pid) const {
    return part(pid).epoch.load(std::memory_order_seq_cst);
  }

 private:
  static constexpr int kBuckets = 3;
  static constexpr int kCollectEvery = 16;

  struct Retired {
    void* ctx;
    std::uint32_t handle;
    Deleter deleter;
  };
  struct Bucket {
    std::uint64_t epoch = 0;
    std::vector<Retired> items;
  };
  struct LocalBuckets {
    Bucket buckets[kBuckets];
    int retire_ops = 0;
  };

  static void drain(Bucket& b) {
    for (const Retired& r : b.items) r.deleter(r.ctx, r.handle);
    b.items.clear();
  }

  ShmEbrParticipant& part(int pid) const {
    WFL_DASSERT(pid >= 0 &&
                pid < static_cast<int>(sh_->max_participants));
    return parts_[pid];
  }

  bool all_participants_at(std::uint64_t e) const {
    const int n = participant_count();
    for (int i = 0; i < n; ++i) {
      const ShmEbrParticipant& p = parts_[i];
      if (p.active.load(std::memory_order_seq_cst) == 0) continue;
      if (p.epoch.load(std::memory_order_seq_cst) != e) return false;
    }
    return true;
  }

  ShmEbrShared* sh_ = nullptr;       // shared, in the arena
  ShmEbrParticipant* parts_ = nullptr;  // shared, resolved locally
  std::vector<LocalBuckets> buckets_;   // process-local retired objects
};

}  // namespace wfl
