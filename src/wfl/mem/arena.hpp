// Growable fixed-address object pools.
//
// The lock algorithm allocates descriptors and immutable set snapshots on
// every attempt. The paper's model treats allocation as primitive, so pool
// operations use raw std::atomic and are *not* counted as algorithm steps
// (DESIGN.md substitution #2); they are also excluded from the wait-freedom
// accounting, exactly as the paper excludes memory management.
//
// Design constraints:
//   * addresses must never move (helpers hold raw pointers across epochs),
//   * reclamation can stall for as long as any process is preempted inside
//     an EBR guard, so demand is unbounded by any static formula — the pool
//     must grow.
// Storage is therefore segmented: a fixed directory of segment pointers,
// segments allocated lazily under a mutex (rare slow path) and published
// with release stores; readers touch only immutable-once-published state.
// The freelist head packs (index:32, tag:32) into one 64-bit CAS; the tag
// increments on every pop, which removes the Treiber-stack ABA case.
// Exceeding max_capacity is a loud failure (leak or runaway workload),
// never UB.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "wfl/check/race.hpp"
#include "wfl/util/align.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/shm.hpp"

namespace wfl {

inline constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

template <typename T>
class IndexPool {
 public:
  explicit IndexPool(std::uint32_t initial_capacity,
                     std::uint32_t max_capacity = 1u << 22)
      : max_capacity_(round_up(max_capacity)) {
    WFL_CHECK(initial_capacity > 0 && initial_capacity <= max_capacity_);
    const std::size_t dir = max_capacity_ >> kSegBits;
    segments_ = std::make_unique<std::atomic<Segment*>[]>(dir);
    next_dir_ = std::make_unique<std::atomic<NextSeg*>[]>(dir);
    for (std::size_t i = 0; i < dir; ++i) {
      segments_[i].store(nullptr, std::memory_order_relaxed);
      next_dir_[i].store(nullptr, std::memory_order_relaxed);
    }
    head_.store(pack(kNullIndex, 0), std::memory_order_relaxed);
    while (capacity_.load(std::memory_order_relaxed) < initial_capacity) {
      grow(/*force=*/true);  // pre-size: grow even though slots are free
    }
  }

  IndexPool(const IndexPool&) = delete;
  IndexPool& operator=(const IndexPool&) = delete;

  ~IndexPool() {
    const std::size_t dir = max_capacity_ >> kSegBits;
    for (std::size_t i = 0; i < dir; ++i) {
      delete segments_[i].load(std::memory_order_relaxed);
      delete next_dir_[i].load(std::memory_order_relaxed);
    }
  }

  std::uint32_t capacity() const {
    return capacity_.load(std::memory_order_acquire);
  }

  std::uint32_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  // Number of shared-freelist transactions (successful pops/pushes, single
  // or batched) since construction. Diagnostic: the allocation-locality
  // tests assert this stays flat across a steady-state window, and
  // bench_hotpath reports it per attempt.
  std::uint64_t freelist_ops() const {
    return freelist_ops_.load(std::memory_order_relaxed);
  }

  // Pops a slot, growing if the freelist is empty. Aborts only at
  // max_capacity (a leak, not a transient condition).
  std::uint32_t alloc() {
    for (;;) {
      std::uint64_t head = head_.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&head_, kLoad, acquire, kPoolHeadLoad, head);
      while (index_of(head) != kNullIndex) {
        const std::uint32_t idx = index_of(head);
        const std::uint32_t next =
            next_slot(idx).load(std::memory_order_relaxed);
        WFL_CHK_ATOMIC(&next_slot(idx), kLoad, relaxed, kPoolNextLoad, next);
        const std::uint64_t desired = pack(next, tag_of(head) + 1);
        if (head_.compare_exchange_weak(head, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          WFL_CHK_ATOMIC(&head_, kCasOk, acq_rel, kPoolHeadCas, desired);
          free_count_.fetch_sub(1, std::memory_order_relaxed);
          freelist_ops_.fetch_add(1, std::memory_order_relaxed);
          return idx;
        }
        WFL_CHK_ATOMIC(&head_, kCasFail, acquire, kPoolHeadCas, head);
      }
      grow();
    }
  }

  // Pops up to `want` slots with ONE head CAS by walking the freelist chain
  // and swinging the head past it. A successful CAS proves the (index, tag)
  // pair never changed, and every pop or push bumps the tag, so the chain
  // walked is exactly the chain popped; a failed CAS discards the walk
  // (stale next-pointers read during a lost race are valid-or-null indices,
  // never garbage — see free()). Returns the number popped (>= 1).
  std::uint32_t alloc_batch(std::uint32_t* out, std::uint32_t want) {
    WFL_DASSERT(want > 0);
    for (;;) {
      std::uint64_t head = head_.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&head_, kLoad, acquire, kPoolHeadLoad, head);
      while (index_of(head) != kNullIndex) {
        std::uint32_t got = 0;
        std::uint32_t idx = index_of(head);
        while (got < want && idx != kNullIndex) {
          out[got++] = idx;
          const std::uint32_t nxt =
              next_slot(idx).load(std::memory_order_relaxed);
          WFL_CHK_ATOMIC(&next_slot(idx), kLoad, relaxed, kPoolNextLoad, nxt);
          idx = nxt;
        }
        const std::uint64_t desired = pack(idx, tag_of(head) + 1);
        if (head_.compare_exchange_weak(head, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          WFL_CHK_ATOMIC(&head_, kCasOk, acq_rel, kPoolHeadCas, desired);
          free_count_.fetch_sub(got, std::memory_order_relaxed);
          freelist_ops_.fetch_add(1, std::memory_order_relaxed);
          return got;
        }
        WFL_CHK_ATOMIC(&head_, kCasFail, acquire, kPoolHeadCas, head);
      }
      grow();
    }
  }

  void free(std::uint32_t idx) {
    WFL_DASSERT(idx < capacity());
    std::uint64_t head = head_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&head_, kLoad, acquire, kPoolHeadLoad, head);
    for (;;) {
      next_slot(idx).store(index_of(head), std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&next_slot(idx), kStore, relaxed, kPoolNextStore,
                     index_of(head));
      const std::uint64_t desired = pack(idx, tag_of(head) + 1);
      if (head_.compare_exchange_weak(head, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        WFL_CHK_ATOMIC(&head_, kCasOk, acq_rel, kPoolHeadCas, desired);
        free_count_.fetch_add(1, std::memory_order_relaxed);
        freelist_ops_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      WFL_CHK_ATOMIC(&head_, kCasFail, acquire, kPoolHeadCas, head);
    }
  }

  // Pushes `n` slots with ONE head CAS: links them into a private chain,
  // then splices the chain onto the head.
  void free_batch(const std::uint32_t* idxs, std::uint32_t n) {
    if (n == 0) return;
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      WFL_DASSERT(idxs[i] < capacity());
      next_slot(idxs[i]).store(idxs[i + 1], std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&next_slot(idxs[i]), kStore, relaxed, kPoolNextStore,
                     idxs[i + 1]);
    }
    std::uint64_t head = head_.load(std::memory_order_acquire);
    WFL_CHK_ATOMIC(&head_, kLoad, acquire, kPoolHeadLoad, head);
    for (;;) {
      next_slot(idxs[n - 1]).store(index_of(head), std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&next_slot(idxs[n - 1]), kStore, relaxed, kPoolNextStore,
                     index_of(head));
      const std::uint64_t desired = pack(idxs[0], tag_of(head) + 1);
      if (head_.compare_exchange_weak(head, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        WFL_CHK_ATOMIC(&head_, kCasOk, acq_rel, kPoolHeadCas, desired);
        free_count_.fetch_add(n, std::memory_order_relaxed);
        freelist_ops_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      WFL_CHK_ATOMIC(&head_, kCasFail, acquire, kPoolHeadCas, head);
    }
  }

  T& at(std::uint32_t idx) {
    WFL_DASSERT(idx < capacity());
    Segment* seg = segments_[idx >> kSegBits].load(std::memory_order_acquire);
    WFL_DASSERT(seg != nullptr);
    return seg->items[idx & kSegMask];
  }
  const T& at(std::uint32_t idx) const {
    return const_cast<IndexPool*>(this)->at(idx);
  }

  T* ptr(std::uint32_t idx) { return &at(idx); }

 private:
  static constexpr std::uint32_t kSegBits = 8;
  static constexpr std::uint32_t kSegSize = 1u << kSegBits;
  static constexpr std::uint32_t kSegMask = kSegSize - 1;

  struct Segment {
    T items[kSegSize];
  };
  struct NextSeg {
    std::atomic<std::uint32_t> next[kSegSize];
  };

  static std::uint32_t round_up(std::uint32_t v) {
    return (v + kSegMask) & ~kSegMask;
  }
  static std::uint64_t pack(std::uint32_t idx, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | idx;
  }
  static std::uint32_t index_of(std::uint64_t head) {
    return static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  }
  static std::uint32_t tag_of(std::uint64_t head) {
    return static_cast<std::uint32_t>(head >> 32);
  }

  std::atomic<std::uint32_t>& next_slot(std::uint32_t idx) {
    NextSeg* seg = next_dir_[idx >> kSegBits].load(std::memory_order_acquire);
    return seg->next[idx & kSegMask];
  }

  // Slow path: appends one segment and pushes its slots onto the freelist.
  // `force` skips the refill re-check — used only by the constructor's
  // pre-sizing loop, where free slots must not stop capacity growth.
  void grow(bool force = false) {
    std::lock_guard<std::mutex> lock(grow_mutex_);
    // Re-check under the lock: a concurrent grower may have refilled.
    if (!force && free_count_.load(std::memory_order_relaxed) > 0) return;
    const std::uint32_t cap = capacity_.load(std::memory_order_relaxed);
    WFL_CHECK_MSG(cap < max_capacity_,
                  "IndexPool reached max_capacity: leak or runaway demand");
    const std::uint32_t seg_idx = cap >> kSegBits;
    auto seg = std::make_unique<Segment>();
    auto nxt = std::make_unique<NextSeg>();
    for (std::uint32_t i = 0; i < kSegSize; ++i) {
      nxt->next[i].store(kNullIndex, std::memory_order_relaxed);
    }
    segments_[seg_idx].store(seg.release(), std::memory_order_release);
    next_dir_[seg_idx].store(nxt.release(), std::memory_order_release);
    capacity_.store(cap + kSegSize, std::memory_order_release);
    // Push top-down so the *lowest* new index pops first: applications use
    // pool indices as lock ids ("node i is protected by lock i") and size
    // their lock spaces by the indices they expect to see.
    for (std::uint32_t i = kSegSize; i > 0; --i) {
      free(cap + i - 1);
    }
  }

  // Read-mostly state (directories, capacity) shares lines; the two words
  // every pool transaction hammers — the CAS'd head and the relaxed
  // occupancy counters — each get a line of their own so head CAS traffic
  // does not invalidate the counters' line and vice versa.
  std::uint32_t max_capacity_;
  std::unique_ptr<std::atomic<Segment*>[]> segments_;
  std::unique_ptr<std::atomic<NextSeg*>[]> next_dir_;
  std::atomic<std::uint32_t> capacity_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> free_count_{0};
  std::atomic<std::uint64_t> freelist_ops_{0};
  std::mutex grow_mutex_;
};

// --- Shared-memory pool (offset-addressed mode) ---------------------------
//
// The cross-process table (core/shm_table.hpp, DESIGN.md §10) needs pools
// whose *state* lives in a ShmArena and whose slots are meaningful in every
// attached address space. IndexPool already trades in indices; what stops
// it crossing a process boundary is the heap-allocated segment directory
// (raw Segment* pointers) and the ability to grow. ShmPool is the
// pointer-free variant: capacity is fixed at create time, storage and
// next-links are flat arrays carved from the arena and referenced by byte
// offset, and each process holds a tiny local accessor with the offsets
// resolved against its own mapping. The freelist discipline — packed
// (index:32, tag:32) head, one CAS per single or batched transaction, tag
// bump on every pop killing the Treiber ABA case — is IndexPool's verbatim.
//
// Exhaustion is a loud failure, not a grow: growth would need cross-process
// agreement on new mappings, and the shm table's demand is bounded by
// (max_procs × pool sizing) plus crash leakage, both sized up front.
struct ShmPoolState {
  std::uint32_t capacity;
  std::uint32_t pad_;
  std::uint64_t next_off;    // std::atomic<uint32>[capacity]
  std::uint64_t items_off;   // T[capacity]
  std::uint64_t inlist_off;  // std::atomic<uint8>[capacity] membership bits
  alignas(kCacheLine) std::atomic<std::uint64_t> head;
  alignas(kCacheLine) std::atomic<std::uint32_t> free_count;
  std::atomic<std::uint64_t> freelist_ops;
  std::atomic<std::uint64_t> alloc_total;
  std::atomic<std::uint64_t> free_total;
};

template <typename T>
class ShmPool {
 public:
  // Creator side: carves state + arrays from the arena, default-constructs
  // every item, links the freelist bottom-up (index 0 pops first). Returns
  // the state's offset for the table header to record.
  static std::uint64_t create_in(ShmArena& a, std::uint32_t capacity) {
    WFL_CHECK(capacity > 0 && capacity < kNullIndex);
    const std::uint64_t state_off = a.create<ShmPoolState>();
    ShmPoolState* st = a.at<ShmPoolState>(state_off);
    st->capacity = capacity;
    st->next_off = a.create_array<std::atomic<std::uint32_t>>(capacity);
    st->items_off = a.alloc_bytes(sizeof(T) * capacity, alignof(T));
    st->inlist_off = a.create_array<std::atomic<std::uint8_t>>(capacity);
    T* items = a.at<T>(st->items_off);
    for (std::uint32_t i = 0; i < capacity; ++i) new (items + i) T();
    auto* next = a.at<std::atomic<std::uint32_t>>(st->next_off);
    auto* inlist = a.at<std::atomic<std::uint8_t>>(st->inlist_off);
    for (std::uint32_t i = 0; i < capacity; ++i) {
      next[i].store(i + 1 < capacity ? i + 1 : kNullIndex,
                    std::memory_order_relaxed);
      inlist[i].store(1, std::memory_order_relaxed);
    }
    st->head.store(pack(0, 0), std::memory_order_relaxed);
    st->free_count.store(capacity, std::memory_order_relaxed);
    st->freelist_ops.store(0, std::memory_order_relaxed);
    st->alloc_total.store(0, std::memory_order_relaxed);
    st->free_total.store(0, std::memory_order_relaxed);
    return state_off;
  }

  ShmPool() = default;

  // Any process (creator included) resolves the offsets against its own
  // mapping. Attach is idempotent and side-effect free.
  void attach(const ShmArena& a, std::uint64_t state_off) {
    st_ = a.at<ShmPoolState>(state_off);
    next_ = a.at<std::atomic<std::uint32_t>>(st_->next_off);
    items_ = a.at<T>(st_->items_off);
    inlist_ = a.at<std::atomic<std::uint8_t>>(st_->inlist_off);
  }

  bool attached() const { return st_ != nullptr; }
  std::uint32_t capacity() const { return st_->capacity; }
  std::uint32_t free_count() const {
    return st_->free_count.load(std::memory_order_relaxed);
  }
  std::uint64_t freelist_ops() const {
    return st_->freelist_ops.load(std::memory_order_relaxed);
  }

  // Pop one slot, or kNullIndex when the freelist is empty. Callers that
  // can apply backpressure (wait for reclamation to catch up) use this;
  // alloc() below is the must-succeed wrapper.
  std::uint32_t try_alloc() {
    std::uint64_t head = st_->head.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = index_of(head);
      if (idx == kNullIndex) return kNullIndex;
      const std::uint32_t next = next_[idx].load(std::memory_order_relaxed);
      if (st_->head.compare_exchange_weak(head, pack(next, tag_of(head) + 1),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        WFL_CHECK_MSG(
            inlist_[idx].exchange(0, std::memory_order_acq_rel) == 1,
            "ShmPool alloc popped a node not on the freelist (corruption)");
        st_->free_count.fetch_sub(1, std::memory_order_relaxed);
        st_->freelist_ops.fetch_add(1, std::memory_order_relaxed);
        st_->alloc_total.fetch_add(1, std::memory_order_relaxed);
        return idx;
      }
    }
  }

  std::uint32_t alloc() {
    const std::uint32_t idx = try_alloc();
    WFL_CHECK_MSG(idx != kNullIndex,
                  "ShmPool exhausted: undersized or crash leakage");
    return idx;
  }

  // Batch pop of up to `want` slots; returns how many were taken (0 when
  // the freelist is empty — the backpressure signal).
  std::uint32_t try_alloc_batch(std::uint32_t* out, std::uint32_t want) {
    WFL_DASSERT(want > 0);
    std::uint64_t head = st_->head.load(std::memory_order_acquire);
    for (;;) {
      if (index_of(head) == kNullIndex) return 0;
      std::uint32_t got = 0;
      std::uint32_t idx = index_of(head);
      while (got < want && idx != kNullIndex) {
        out[got++] = idx;
        idx = next_[idx].load(std::memory_order_relaxed);
      }
      if (st_->head.compare_exchange_weak(head, pack(idx, tag_of(head) + 1),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        for (std::uint32_t i = 0; i < got; ++i) {
          WFL_CHECK_MSG(
              inlist_[out[i]].exchange(0, std::memory_order_acq_rel) == 1,
              "ShmPool alloc popped a node not on the freelist (corruption)");
        }
        st_->free_count.fetch_sub(got, std::memory_order_relaxed);
        st_->freelist_ops.fetch_add(1, std::memory_order_relaxed);
        st_->alloc_total.fetch_add(got, std::memory_order_relaxed);
        return got;
      }
    }
  }

  std::uint32_t alloc_batch(std::uint32_t* out, std::uint32_t want) {
    const std::uint32_t got = try_alloc_batch(out, want);
    WFL_CHECK_MSG(got > 0,
                  "ShmPool exhausted: undersized or crash leakage");
    return got;
  }

  void free(std::uint32_t idx) {
    WFL_DASSERT(idx < st_->capacity);
    WFL_CHECK_MSG(inlist_[idx].exchange(1, std::memory_order_acq_rel) == 0,
                  "ShmPool double free");
    std::uint64_t head = st_->head.load(std::memory_order_acquire);
    for (;;) {
      next_[idx].store(index_of(head), std::memory_order_relaxed);
      if (st_->head.compare_exchange_weak(head, pack(idx, tag_of(head) + 1),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        st_->free_count.fetch_add(1, std::memory_order_relaxed);
        st_->freelist_ops.fetch_add(1, std::memory_order_relaxed);
        st_->free_total.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  void free_batch(const std::uint32_t* idxs, std::uint32_t n) {
    if (n == 0) return;
    for (std::uint32_t i = 0; i < n; ++i) {
      WFL_DASSERT(idxs[i] < st_->capacity);
      WFL_CHECK_MSG(
          inlist_[idxs[i]].exchange(1, std::memory_order_acq_rel) == 0,
          "ShmPool double free");
    }
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      next_[idxs[i]].store(idxs[i + 1], std::memory_order_relaxed);
    }
    std::uint64_t head = st_->head.load(std::memory_order_acquire);
    for (;;) {
      next_[idxs[n - 1]].store(index_of(head), std::memory_order_relaxed);
      if (st_->head.compare_exchange_weak(head,
                                          pack(idxs[0], tag_of(head) + 1),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        st_->free_count.fetch_add(n, std::memory_order_relaxed);
        st_->freelist_ops.fetch_add(1, std::memory_order_relaxed);
        st_->free_total.fetch_add(n, std::memory_order_relaxed);
        return;
      }
    }
  }

  T& at(std::uint32_t idx) {
    WFL_DASSERT(idx < st_->capacity);
    return items_[idx];
  }
  const T& at(std::uint32_t idx) const {
    WFL_DASSERT(idx < st_->capacity);
    return items_[idx];
  }
  T* ptr(std::uint32_t idx) { return &at(idx); }

  std::uint64_t alloc_total() const {
    return st_->alloc_total.load(std::memory_order_relaxed);
  }
  std::uint64_t free_total() const {
    return st_->free_total.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t pack(std::uint32_t idx, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | idx;
  }
  static std::uint32_t index_of(std::uint64_t head) {
    return static_cast<std::uint32_t>(head & 0xFFFFFFFFu);
  }
  static std::uint32_t tag_of(std::uint64_t head) {
    return static_cast<std::uint32_t>(head >> 32);
  }

  ShmPoolState* st_ = nullptr;               // shared, in the arena
  std::atomic<std::uint32_t>* next_ = nullptr;  // shared, resolved locally
  T* items_ = nullptr;                       // shared, resolved locally
  std::atomic<std::uint8_t>* inlist_ = nullptr;  // freelist membership bits
};

// A small owner-private LIFO of pool slots fronting a shared IndexPool.
// alloc() pops the cache and refills a batch (one head CAS) only when
// empty; free() pushes and spills the *coldest* batch (one head CAS) only
// when full — so a steady-state balanced alloc/free stream touches no
// shared freelist line at all. Single-owner by construction: the owning
// process allocates from it, and EBR deleters push into it only when run
// by that same process (retire/collect are per-participant) or during
// quiescent domain teardown. Like the pool itself, caches are outside the
// step model (DESIGN.md substitution #2).
//
// PoolT is any pool with IndexPool's alloc_batch/free_batch surface; the
// shm table binds SlotCache<T, Cap, ShmPool<T>> so the batching layer is
// shared between the in-process and cross-process runtimes. The cache
// itself always lives in the owner's private memory — only the slot
// indices it traffics in are meaningful across processes.
template <typename T, std::uint32_t Cap = 64, typename PoolT = IndexPool<T>>
class SlotCache {
  static_assert(Cap >= 8 && (Cap % 4) == 0);

 public:
  static constexpr std::uint32_t kBatch = Cap / 4;

  void bind(PoolT* pool) { pool_ = pool; }
  PoolT& pool() { return *pool_; }

  std::uint32_t alloc() {
    // Single-owner plain region: every access must be ordered against every
    // other (the owner's program order, or EBR's deleter-runs-on-owner).
    WFL_PLAIN_WRITE(&slots_[0], kSlotCacheBatch);
    if (n_ == 0) n_ = pool_->alloc_batch(slots_, kBatch);
    return slots_[--n_];
  }

  // Backpressure-aware variant: kNullIndex when the cache is empty and the
  // shared pool has nothing to refill from (instantiated only against pools
  // with a try_alloc_batch, i.e. ShmPool).
  std::uint32_t try_alloc() {
    WFL_PLAIN_WRITE(&slots_[0], kSlotCacheBatch);
    if (n_ == 0) n_ = pool_->try_alloc_batch(slots_, kBatch);
    if (n_ == 0) return kNullIndex;
    return slots_[--n_];
  }

  void free(std::uint32_t idx) {
    WFL_PLAIN_WRITE(&slots_[0], kSlotCacheBatch);
    if (n_ == Cap) {
      pool_->free_batch(slots_, kBatch);  // spill the cold (bottom) end
      std::memmove(slots_, slots_ + kBatch,
                   (Cap - kBatch) * sizeof(std::uint32_t));
      n_ -= kBatch;
    }
    slots_[n_++] = idx;
  }

  // Returns every cached slot to the shared pool (session release, crash
  // cleanup — the allocation-locality tests assert nothing is leaked).
  void drain() {
    WFL_PLAIN_WRITE(&slots_[0], kSlotCacheBatch);
    pool_->free_batch(slots_, n_);
    n_ = 0;
  }

  std::uint32_t size() const { return n_; }

  // EbrDomain deleter that returns `handle` to the cache's spill side; ctx
  // is the retiring process's own SlotCache.
  static void free_to_cache(void* ctx, std::uint32_t handle) {
    static_cast<SlotCache*>(ctx)->free(handle);
  }

 private:
  PoolT* pool_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint32_t slots_[Cap];
};

}  // namespace wfl
