// Implementation of the vector-clock race & ordering-audit engine.
// Model documented in race.hpp; contracts in ordering_contracts.hpp;
// narrative in DESIGN.md §7.

#include "wfl/check/race.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "wfl/sim/sim.hpp"
#include "wfl/util/assert.hpp"

namespace wfl::race {
namespace {

constexpr std::size_t kMaxFindings = 256;
constexpr std::size_t kTraceCap = 1024;

bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}
bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
bool is_seq(std::memory_order o) { return o == std::memory_order_seq_cst; }

bool is_load_class(Op op) {
  return op == Op::kLoad || op == Op::kPeek || op == Op::kCasFail;
}
bool is_rmw_class(Op op) {
  return op == Op::kCasOk || op == Op::kExchange || op == Op::kFetchAdd;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kCasOk: return "cas(ok)";
    case Op::kCasFail: return "cas(fail)";
    case Op::kExchange: return "exchange";
    case Op::kFetchAdd: return "fetch_add";
    case Op::kInit: return "init";
    case Op::kPeek: return "peek";
  }
  return "?";
}

const char* ord_name(std::memory_order o) {
  switch (o) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

// Sparse-friendly vector clock over process slots (slot 0 = the main
// setup/teardown context; simulator pid p lives at slot p + 1).
struct VC {
  std::vector<std::uint64_t> v;

  std::uint64_t at(std::size_t i) const { return i < v.size() ? v[i] : 0; }
  void set(std::size_t i, std::uint64_t x) {
    if (v.size() <= i) v.resize(i + 1, 0);
    v[i] = x;
  }
  void join(const VC& o) {
    if (v.size() < o.v.size()) v.resize(o.v.size(), 0);
    for (std::size_t i = 0; i < o.v.size(); ++i) v[i] = std::max(v[i], o.v[i]);
  }
  void clear() { v.clear(); }
};

struct PerProc {
  VC clock;
  VC pending_acquire;  // sync consumed by relaxed loads, owed to a fence
  VC release_fence;    // snapshot armed by a release fence
  bool fence_armed = false;
  bool announce_pending = false;  // EBR announce not yet fenced
  Site pending_tag = Site::kUnknown;
};

// Shadow + clock state for one atomic word.
struct LocState {
  VC sync;      // what an acquire of this word's value synchronizes with
  VC write_vc;  // write_vc[q] = q's self-component at q's last write
  VC access_vc; // any hooked access (for init-quiescence)
  std::vector<std::uint64_t> write_slot;   // sim slot of last write, per proc
  std::vector<std::uint64_t> access_slot;  // sim slot of last access, per proc
  std::uint64_t shadow = 0;
  bool has_shadow = false;
  bool poisoned = false;  // touched by a foreign OS thread; checks disabled
};

// FastTrack-style state for one annotated plain region (keyed by base).
struct RegionState {
  VC write_vc;
  VC read_vc;
  std::vector<std::uint64_t> write_slot;
  std::vector<std::uint64_t> read_slot;
  Site site = Site::kUnknown;
  bool poisoned = false;
};

enum class Ev : std::uint8_t {
  kAtomic,
  kFence,
  kPlainRead,
  kPlainWrite,
  kMutexAcq,
  kMutexRel,
  kBoundary,
};

struct TraceEvent {
  Ev ev;
  Op op;
  Site site;
  std::memory_order order;
  int pid;  // simulator pid, or -1 for the setup context
  std::uint64_t sim_slot;
  const void* addr;
  std::uint64_t val;
};

void stamp(VC& vc, std::vector<std::uint64_t>& slots, std::size_t p,
           std::uint64_t self, std::uint64_t sim_slot) {
  vc.set(p, self);
  if (slots.size() <= p) slots.resize(p + 1, 0);
  slots[p] = sim_slot;
}

}  // namespace

struct RaceEngine::Impl {
  std::mutex mu;
  std::thread::id owner = std::this_thread::get_id();

  std::vector<PerProc> procs;
  std::unordered_map<const void*, LocState> locs;
  std::unordered_map<const void*, RegionState> regions;
  std::unordered_map<const void*, VC> mutexes;
  VC sc;     // global seq_cst clock
  VC base;   // joined clock at the last run boundary (seeds new procs)

  Mutation mutation;
  std::vector<Finding> findings;
  std::unordered_set<std::string> finding_keys;  // dedup (kind|site|addr)
  std::uint64_t suppressed = 0;
  std::uint64_t events = 0;
  std::uint64_t foreign = 0;
  std::uint64_t seed = 0;
  bool in_run = false;

  std::array<TraceEvent, kTraceCap> trace{};
  std::size_t trace_n = 0;

  // ---- helpers ----

  struct Ctx {
    std::size_t p;         // process slot
    int pid;               // simulator pid or -1
    std::uint64_t slot;    // simulator slot counter (0 outside a run)
  };

  Ctx ctx() const {
    Simulator* sim = Simulator::current();
    const int pid = sim != nullptr ? sim->current_pid() : -1;
    return Ctx{static_cast<std::size_t>(pid + 1), pid,
               sim != nullptr ? sim->slots_used() : 0};
  }

  PerProc& proc(std::size_t p) {
    while (procs.size() <= p) {
      procs.emplace_back();
      procs.back().clock = base;
    }
    return procs[p];
  }

  void push_trace(const TraceEvent& e) {
    trace[trace_n % kTraceCap] = e;
    ++trace_n;
  }

  std::memory_order effective(Site site, std::memory_order declared) const {
    if (mutation.kind == Mutation::Kind::kDowngradeOrder &&
        site == mutation.site) {
      return mutation.order;
    }
    return declared;
  }

  void add_finding(const char* kind, Site site, const void* addr,
                   std::string msg) {
    // Only report from inside a simulator run: setup/teardown and RealPlat
    // test phases in the same binary update state silently. Deduplicate by
    // (kind, site, addr) so a mutated model doesn't flood the report.
    if (!in_run) return;
    std::ostringstream key;
    key << kind << '|' << static_cast<int>(site) << '|' << addr;
    if (!finding_keys.insert(key.str()).second ||
        findings.size() >= kMaxFindings) {
      ++suppressed;
      return;
    }
    findings.push_back(Finding{kind, site, addr, std::move(msg)});
  }

  std::string who(std::size_t p) const {
    if (p == 0) return "setup";
    return "pid " + std::to_string(static_cast<int>(p) - 1);
  }

  std::string repro(const Ctx& c) const {
    std::ostringstream os;
    os << " [reproducer: seed=" << seed << " slot=" << c.slot << " by "
       << who(c.p) << "]";
    return os.str();
  }

  void check_contract(const Ctx& c, Op op, std::memory_order eff, Site site) {
    const SiteInfo& si = site_info(site);
    const char* need = nullptr;
    switch (si.contract) {
      case Contract::kSeqCstOnly:
        if (!is_seq(eff)) need = "seq_cst";
        break;
      case Contract::kAcquireLoad:
        if (is_load_class(op) && !is_acquire(eff)) need = ">=acquire";
        break;
      case Contract::kReleaseStore:
        if ((op == Op::kStore || is_rmw_class(op)) && !is_release(eff)) {
          need = ">=release";
        }
        break;
      case Contract::kAcqRelRmw:
        if (is_rmw_class(op) && !(is_acquire(eff) && is_release(eff))) {
          need = "acq_rel";
        } else if (is_load_class(op) && !is_acquire(eff)) {
          need = ">=acquire";
        } else if (op == Op::kStore && !is_release(eff)) {
          need = ">=release";
        }
        break;
      case Contract::kFutexSeq:
        if ((op == Op::kStore || is_rmw_class(op)) && !is_release(eff)) {
          need = ">=release";
        } else if (is_load_class(op) && !is_acquire(eff)) {
          need = ">=acquire";
        }
        break;
      default:
        break;
    }
    if (site == Site::kUnknown && !is_seq(eff) && op != Op::kInit &&
        op != Op::kPeek) {
      need = "seq_cst (undeclared site)";
    }
    if (need != nullptr) {
      std::ostringstream os;
      os << "ordering contract violated at " << si.name << ": " << op_name(op)
         << " ran with " << ord_name(eff) << ", contract requires " << need
         << " (" << si.why << ")" << repro(c);
      add_finding("contract", site, nullptr, os.str());
    }
  }

  void seq_join(PerProc& pp) {
    pp.clock.join(sc);
    sc.join(pp.clock);
  }

  // ---- event handlers (mu held, owner thread) ----

  void on_atomic(const void* addr, Op op, std::memory_order declared,
                 Site site, std::uint64_t val) {
    ++events;
    Ctx c = ctx();
    PerProc& pp = proc(c.p);
    if (site == Site::kUnknown && pp.pending_tag != Site::kUnknown) {
      site = pp.pending_tag;
    }
    pp.pending_tag = Site::kUnknown;
    const std::memory_order eff = effective(site, declared);
    pp.clock.set(c.p, pp.clock.at(c.p) + 1);
    check_contract(c, op, eff, site);

    // EBR publication-point state machine (structural Dekker check).
    if (site == Site::kEbrAnnounce || site == Site::kEbrEpochAnnounce) {
      pp.announce_pending = true;
    } else if (site == Site::kEbrVerifyLoad && pp.announce_pending) {
      std::ostringstream os;
      os << "EBR epoch verify load at ebr.verify_load is not separated from "
            "the preceding announce store by a seq_cst fence: the collector "
            "scan may miss this guard and reclaim under it (DESIGN.md §4.4)"
         << repro(c);
      add_finding("unfenced-announce", site, addr, os.str());
      pp.announce_pending = false;  // report once per window
    }

    LocState& loc = locs[addr];
    push_trace(TraceEvent{Ev::kAtomic, op, site, eff, c.pid, c.slot, addr,
                          val});
    if (loc.poisoned) return;

    // Shadow-value consistency: a hooked read must observe the last hooked
    // write. A mismatch means an out-of-band (unannotated) write happened.
    if (is_load_class(op)) {
      if (loc.has_shadow && loc.shadow != val) {
        std::ostringstream os;
        os << "shadow mismatch at " << site_info(site).name << ": "
           << op_name(op) << " observed 0x" << std::hex << val
           << " but the last instrumented write stored 0x" << loc.shadow
           << std::dec
           << " — an un-instrumented write bypassed the platform hooks"
           << repro(c);
        add_finding("shadow", site, addr, os.str());
      }
      loc.shadow = val;  // resync so one rogue write reports once
      loc.has_shadow = true;
    } else {
      loc.shadow = val;
      loc.has_shadow = true;
    }

    if (op == Op::kInit) {
      // Construction-only: every prior access (any process) must be ordered
      // before this init.
      for (std::size_t q = 0; q < loc.access_vc.v.size(); ++q) {
        if (q == c.p) continue;
        if (loc.access_vc.at(q) > pp.clock.at(q)) {
          std::ostringstream os;
          os << "init() on a non-quiescent atomic: last access by " << who(q)
             << " @ slot "
             << (q < loc.access_slot.size() ? loc.access_slot[q] : 0)
             << " is not ordered before this init ("
             << site_info(Site::kAtomicInit).why << ")" << repro(c);
          add_finding("init-race", Site::kAtomicInit, addr, os.str());
          break;
        }
      }
      loc.sync.clear();  // a relaxed init breaks any prior release sequence
    } else if (op == Op::kPeek) {
      for (std::size_t q = 0; q < loc.write_vc.v.size(); ++q) {
        if (q == c.p) continue;
        if (loc.write_vc.at(q) > pp.clock.at(q)) {
          std::ostringstream os;
          os << "peek() with a concurrent writer: last write by " << who(q)
             << " @ slot "
             << (q < loc.write_slot.size() ? loc.write_slot[q] : 0)
             << " is not ordered before this relaxed debug read ("
             << site_info(Site::kAtomicPeek).why << ")" << repro(c);
          add_finding("peek-race", Site::kAtomicPeek, addr, os.str());
          break;
        }
      }
    }

    // Clock flow per the declared-order model (race.hpp header comment).
    if (is_load_class(op) || op == Op::kPeek) {
      if (is_acquire(eff)) {
        pp.clock.join(loc.sync);
      } else {
        pp.pending_acquire.join(loc.sync);
      }
    }
    if (op == Op::kStore) {
      if (is_release(eff)) {
        loc.sync = pp.clock;
      } else if (pp.fence_armed) {
        loc.sync = pp.release_fence;  // fence-ordered relaxed publication
      } else {
        loc.sync.clear();
      }
    }
    if (is_rmw_class(op)) {
      if (is_acquire(eff)) {
        pp.clock.join(loc.sync);
      } else {
        pp.pending_acquire.join(loc.sync);
      }
      // RMWs continue the release sequence: the prior sync survives; a
      // release-class RMW additionally publishes this process.
      if (is_release(eff)) {
        loc.sync.join(pp.clock);
      } else if (pp.fence_armed) {
        loc.sync.join(pp.release_fence);
      }
    }
    if (is_seq(eff)) seq_join(pp);

    const std::uint64_t self = pp.clock.at(c.p);
    stamp(loc.access_vc, loc.access_slot, c.p, self, c.slot);
    if (op == Op::kStore || op == Op::kInit || is_rmw_class(op)) {
      stamp(loc.write_vc, loc.write_slot, c.p, self, c.slot);
    }
  }

  void on_fence(std::memory_order declared, Site site) {
    ++events;
    Ctx c = ctx();
    if (mutation.kind == Mutation::Kind::kDropFence && site == mutation.site) {
      // The model behaves as if this fence were deleted from the program.
      push_trace(TraceEvent{Ev::kFence, Op::kLoad, site, declared, c.pid,
                            c.slot, nullptr, 0});
      return;
    }
    PerProc& pp = proc(c.p);
    const std::memory_order eff = effective(site, declared);
    pp.clock.set(c.p, pp.clock.at(c.p) + 1);
    if (site_info(site).contract == Contract::kSeqCstFence && !is_seq(eff)) {
      std::ostringstream os;
      os << "ordering contract violated at " << site_info(site).name
         << ": fence ran with " << ord_name(eff)
         << ", contract requires seq_cst (" << site_info(site).why << ")"
         << repro(c);
      add_finding("contract", site, nullptr, os.str());
    }
    if (is_acquire(eff)) {
      pp.clock.join(pp.pending_acquire);
      pp.pending_acquire.clear();
    }
    if (is_release(eff)) {
      pp.release_fence = pp.clock;
      pp.fence_armed = true;
    }
    if (is_seq(eff)) {
      seq_join(pp);
      pp.announce_pending = false;  // the publication point
    }
    push_trace(TraceEvent{Ev::kFence, Op::kLoad, site, eff, c.pid, c.slot,
                          nullptr, 0});
  }

  void on_plain(const void* region, bool is_write, Site site) {
    ++events;
    Ctx c = ctx();
    PerProc& pp = proc(c.p);
    pp.clock.set(c.p, pp.clock.at(c.p) + 1);
    RegionState& r = regions[region];
    r.site = site;
    push_trace(TraceEvent{is_write ? Ev::kPlainWrite : Ev::kPlainRead,
                          Op::kStore, site, std::memory_order_relaxed, c.pid,
                          c.slot, region, 0});
    if (r.poisoned) return;

    auto conflict = [&](const VC& vc, const std::vector<std::uint64_t>& slots,
                        const char* prior_kind) {
      for (std::size_t q = 0; q < vc.v.size(); ++q) {
        if (q == c.p) continue;
        if (vc.at(q) > pp.clock.at(q)) {
          std::ostringstream os;
          os << "plain-memory race on region " << site_info(site).name
             << " @ " << region << ": " << prior_kind << " by " << who(q)
             << " @ slot " << (q < slots.size() ? slots[q] : 0)
             << " is not happens-before ordered with this "
             << (is_write ? "write" : "read") << " (" << site_info(site).why
             << ")" << repro(c);
          add_finding("plain-race", site, region, os.str());
          return;
        }
      }
    };
    if (is_write) {
      conflict(r.write_vc, r.write_slot, "write");
      conflict(r.read_vc, r.read_slot, "read");
      stamp(r.write_vc, r.write_slot, c.p, pp.clock.at(c.p), c.slot);
    } else {
      conflict(r.write_vc, r.write_slot, "write");
      stamp(r.read_vc, r.read_slot, c.p, pp.clock.at(c.p), c.slot);
    }
  }

  void on_lifetime(const void* addr, bool created_now, std::uint64_t val) {
    ++events;
    if (created_now) {
      Ctx c = ctx();
      PerProc& pp = proc(c.p);
      LocState fresh;
      fresh.shadow = val;
      fresh.has_shadow = true;
      stamp(fresh.access_vc, fresh.access_slot, c.p, pp.clock.at(c.p),
            c.slot);
      locs[addr] = std::move(fresh);
    } else {
      // Retire both interpretations of the address: a freed atomic's slab
      // slot or a freed region's storage may be heap-reused with no
      // happens-before edge to its previous life.
      locs.erase(addr);
      regions.erase(addr);
    }
  }

  void on_mutex(const void* mtx, bool acquire) {
    ++events;
    Ctx c = ctx();
    PerProc& pp = proc(c.p);
    pp.clock.set(c.p, pp.clock.at(c.p) + 1);
    VC& m = mutexes[mtx];
    if (acquire) {
      pp.clock.join(m);
    } else {
      m.join(pp.clock);
    }
    push_trace(TraceEvent{acquire ? Ev::kMutexAcq : Ev::kMutexRel, Op::kLoad,
                          Site::kUnknown, std::memory_order_seq_cst, c.pid,
                          c.slot, mtx, 0});
  }

  void on_boundary(bool entering, std::uint64_t s) {
    ++events;
    seed = s;
    in_run = entering;
    VC all = sc;
    for (PerProc& pp : procs) all.join(pp.clock);
    for (PerProc& pp : procs) {
      pp.clock = all;
      pp.pending_acquire.clear();
      pp.fence_armed = false;
      pp.announce_pending = false;
      pp.pending_tag = Site::kUnknown;
    }
    sc = all;
    base = all;
    push_trace(TraceEvent{Ev::kBoundary, Op::kLoad, Site::kUnknown,
                          std::memory_order_seq_cst, -1, 0, nullptr,
                          entering ? 1 : 0});
  }

  void poison(const void* addr, bool plain_region) {
    ++foreign;
    if (plain_region) {
      regions[addr].poisoned = true;
    } else {
      locs[addr].poisoned = true;
    }
  }
};

RaceEngine::RaceEngine() : impl_(std::make_unique<Impl>()) {}

RaceEngine::~RaceEngine() { uninstall(); }

void RaceEngine::install() {
  RaceEngine* expected = nullptr;
  const bool ok = g_engine.compare_exchange_strong(
      expected, this, std::memory_order_seq_cst);
  WFL_CHECK_MSG(ok, "race::RaceEngine: another engine is already installed");
}

void RaceEngine::uninstall() {
  RaceEngine* expected = this;
  g_engine.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_seq_cst);
}

void RaceEngine::set_mutation(Mutation m) {
  std::lock_guard<std::mutex> g(impl_->mu);
  impl_->mutation = m;
}

const std::vector<Finding>& RaceEngine::findings() const {
  return impl_->findings;
}

void RaceEngine::clear_findings() {
  std::lock_guard<std::mutex> g(impl_->mu);
  impl_->findings.clear();
  impl_->finding_keys.clear();
  impl_->suppressed = 0;
}

std::uint64_t RaceEngine::events() const { return impl_->events; }
std::uint64_t RaceEngine::foreign_events() const { return impl_->foreign; }
std::uint64_t RaceEngine::last_seed() const { return impl_->seed; }

void RaceEngine::report(std::ostream& os) const {
  std::lock_guard<std::mutex> g(impl_->mu);
  os << "[wfl-race] " << impl_->findings.size() << " finding(s), "
     << impl_->suppressed << " duplicate(s) suppressed, " << impl_->events
     << " events\n";
  std::size_t n = 0;
  for (const Finding& f : impl_->findings) {
    os << "[wfl-race] #" << ++n << " (" << f.kind << ") " << f.message
       << "\n";
    if (f.addr == nullptr) continue;
    // Shrunk trace: the tail of the event ring filtered to this address.
    const std::size_t total = std::min(impl_->trace_n, kTraceCap);
    const std::size_t start = impl_->trace_n - total;
    std::size_t shown = 0;
    for (std::size_t i = start; i < impl_->trace_n && shown < 16; ++i) {
      const TraceEvent& e = impl_->trace[i % kTraceCap];
      if (e.addr != f.addr) continue;
      ++shown;
      os << "[wfl-race]     slot=" << e.sim_slot << " pid=" << e.pid << " ";
      switch (e.ev) {
        case Ev::kAtomic:
          os << op_name(e.op) << "(" << ord_name(e.order) << ") val=0x"
             << std::hex << e.val << std::dec;
          break;
        case Ev::kFence: os << "fence(" << ord_name(e.order) << ")"; break;
        case Ev::kPlainRead: os << "plain-read"; break;
        case Ev::kPlainWrite: os << "plain-write"; break;
        case Ev::kMutexAcq: os << "mutex-acquire"; break;
        case Ev::kMutexRel: os << "mutex-release"; break;
        case Ev::kBoundary: os << "run-boundary"; break;
      }
      os << " site=" << site_info(e.site).name << "\n";
    }
  }
}

namespace {
// Returns true when the event may touch engine state fully; false when it
// came from a foreign OS thread and must only poison.
bool owner_thread(RaceEngine::Impl& im) {
  return std::this_thread::get_id() == im.owner;
}
}  // namespace

void atomic_event_slow(RaceEngine* e, const void* addr, Op op,
                       std::memory_order order, Site site,
                       std::uint64_t val) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    im.poison(addr, false);
    return;
  }
  im.on_atomic(addr, op, order, site, val);
}

void fence_event_slow(RaceEngine* e, std::memory_order order, Site site) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    ++im.foreign;
    return;
  }
  im.on_fence(order, site);
}

void plain_event_slow(RaceEngine* e, const void* region, bool is_write,
                      Site site) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    im.poison(region, true);
    return;
  }
  im.on_plain(region, is_write, site);
}

void lifetime_event_slow(RaceEngine* e, const void* addr, bool created,
                         std::uint64_t val) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    if (created) {
      im.poison(addr, false);
    } else {
      im.locs.erase(addr);
      im.regions.erase(addr);
    }
    return;
  }
  im.on_lifetime(addr, created, val);
}

void mutex_event_slow(RaceEngine* e, const void* mtx, bool acquire) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    ++im.foreign;
    return;
  }
  im.on_mutex(mtx, acquire);
}

void tag_next_slow(RaceEngine* e, Site site) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    ++im.foreign;
    return;
  }
  im.proc(im.ctx().p).pending_tag = site;
}

void run_boundary_slow(RaceEngine* e, bool entering, std::uint64_t seed) {
  RaceEngine::Impl& im = e->impl();
  std::lock_guard<std::mutex> g(im.mu);
  if (!owner_thread(im)) {
    ++im.foreign;
    return;
  }
  im.on_boundary(entering, seed);
}

}  // namespace wfl::race
