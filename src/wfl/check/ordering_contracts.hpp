// Machine-checked memory-ordering contracts for every weakened operation.
//
// The paper's model is sequentially consistent shared memory: every
// Plat::Atomic operation is seq_cst and counted as a step. PRs 4-6 weakened
// orderings at a closed set of *infrastructure* sites (reclamation, pools,
// advisory scheduling state — all outside the step model, DESIGN.md
// substitution #2), each justified by a hand-written argument in DESIGN.md
// §4.4/§5.1/§6.1. This header turns those arguments into data: one Site per
// weakened operation, one Contract naming the *kind* of argument that makes
// the weakening sound, and a rationale string quoting it. The analysis
// engine (check/race.hpp) looks every hooked operation up here and verifies
// the declared contract dynamically:
//
//   * strength contracts (kSeqCstOnly/kAcquireLoad/kReleaseStore/kAcqRelRmw)
//     check the declared memory_order of the operation that actually ran —
//     a seeded mutation (or a future refactor that silently downgrades an
//     order) is reported at the first occurrence;
//   * kFencedAnnounce drives a structural Dekker check: a relaxed announce
//     store must be separated from its seq_cst verify load by a seq_cst
//     fence (the EBR publication-point pattern, DESIGN.md §4.4);
//   * kOrderedWrites runs a happens-before race check over all writes to
//     the word: relaxed is sound only because every pair of writes is
//     ordered by some *other* hooked synchronization (e.g. retire_refs:
//     all drops run on the retiring participant);
//   * kAdvisory and kAtomicOnly document that the value is never trusted
//     for safety (claims, gauges) or that only RMW atomicity is load-
//     bearing (serial refill); no dynamic check beyond event logging.
//
// Sites NOT listed here are intentionally unhooked: pool segment-directory
// publication (serialized by grow()'s mutex, consumed with acquire loads),
// pure monotone gauges (freelist_ops, executor wake/park counters), and
// quiescent teardown reads. A hooked atomic operation that arrives with a
// weakened order and NO site is itself a finding ("undeclared weakening").
#pragma once

#include <cstdint>

namespace wfl::race {

enum class Site : std::uint8_t {
  kUnknown = 0,

  // --- EBR (mem/ebr.hpp, DESIGN.md §4.4) ---
  kEbrAnnounce,         // p.active relaxed store (publication-point fence)
  kEbrEpochAnnounce,    // p.epoch relaxed store (same fence pattern)
  kEbrPublishFence,     // the seq_cst publication-point fence
  kEbrVerifyLoad,       // global_epoch seq_cst load closing the window
  kEbrEpochSelfLoad,    // own epoch word, relaxed (single-writer)
  kEbrExit,             // p.active release store (guard exit)
  kEbrAbandon,          // p.active seq_cst store (crash harness)
  kEbrRetireEpochLoad,  // global_epoch seq_cst load in retire()
  kEbrCollectEpochLoad, // global_epoch seq_cst load in collect()/free
  kEbrScanActive,       // participant scan: active seq_cst load
  kEbrScanEpoch,        // participant scan: epoch seq_cst load
  kEbrEpochAdvanceCas,  // global_epoch seq_cst CAS (one advance per value)
  kEbrParticipantCount, // next_participant_ counter (register + scan bound)

  // --- IndexPool (mem/arena.hpp) ---
  kPoolHeadLoad,        // freelist head acquire load
  kPoolHeadCas,         // freelist head acq_rel CAS (pop/push)
  kPoolNextLoad,        // next-link relaxed load (valid-or-null)
  kPoolNextStore,       // next-link relaxed store (pre-CAS linking)

  // --- Descriptor bookkeeping (core/descriptor.hpp, core/lock_table.hpp) ---
  kRetireRefsInit,      // retire_refs relaxed store, pre-publication
  kRetireRefsDrop,      // retire_refs acq_rel fetch_sub (last frees)
  kHelpClaimLoad,       // help_claim relaxed load (DESIGN.md §5.2)
  kHelpClaimStore,      // help_claim relaxed store (take/revoke)
  kHelpClaimRelease,    // help_claim relaxed CAS (release own claim)
  kClaimSkipsBump,      // claim_skips relaxed fetch_add (patience)
  kClaimSkipsReset,     // claim_skips relaxed store

  // --- Per-process hot state (core/process.hpp) ---
  kStatsBump,           // StatsSlab relaxed load-then-store (single writer)
  kSerialRefill,        // serial high-water relaxed fetch_add
  kFastReadyLoad,       // fast_ready relaxed load (cooldown flag)
  kFastReadyStore,      // fast_ready relaxed store

  // --- Thunk log bookkeeping (idem/idem.hpp) ---
  kLogNoteUsed,         // used_ops_ relaxed store/load (equal-value racers)

  // --- Thin-word fast path (core/lock_table.hpp, DESIGN.md §5.1) ---
  kThinPublish,         // publish CAS 0 -> (pid, serial); must stay seq_cst
  kThinRelease,         // release CAS/store back to 0

  // --- Wake plumbing (platforms, core/lock_table.hpp) ---
  kWakeSeq,             // Wake sequence word (acquire/release)
  kWakeSinkInstall,     // wake_sink_ release store
  kWakeSinkLoad,        // wake_sink_ acquire load (hot-path null check)

  // --- Async executor (core/async_executor.hpp, DESIGN.md §6.1) ---
  kAsyncStateCas,       // AsyncOp state acq_rel CAS (park/wake/signal)
  kAsyncStateStore,     // AsyncOp state release store (begin cycle/retry)
  kAsyncStateLoad,      // AsyncOp state acquire load
  kAsyncRefsDrop,       // AsyncOp refs acq_rel fetch_sub (last deletes)
  kAsyncClientLive,     // client live flag release store / acquire load
  kAsyncInlineLatch,    // inline_busy_ acquire CAS / release store
  kAsyncInFlight,       // in_flight_ acquire load / acq_rel sub (shutdown)

  // --- Lock-free work queue (util/work_queue.hpp, DESIGN.md §8) ---
  kWqTopLoad,           // top acquire load (steal open; push/take recheck)
  kWqTopCas,            // top seq_cst CAS (steal vs. take on one element)
  kWqBottomOwnLoad,     // owner's own bottom read (single-writer word)
  kWqBottomPublish,     // push's bottom release store (publishes the slot)
  kWqBottomReserve,     // take's speculative decrement (fence-ordered)
  kWqBottomStealLoad,   // steal's bottom acquire load
  kWqFence,             // take/steal seq_cst fences (the Dekker points)
  kWqRingPublish,       // grow's ring-pointer release store
  kWqRingLoad,          // ring-pointer acquire load
  kWqSlot,              // ring slot store/load (valid-or-discarded)
  kInjPushCas,          // injector head push CAS (Dekker vs. worker sleep)
  kInjTakeAll,          // injector head take-all exchange (consumer side)
  kInjPeek,             // injector head emptiness probe (sleep recheck)
  kInjNext,             // injector next link (private until the push CAS)
  kWkrState,            // worker idle-state word (awake/idle/signalled)

  // --- Annotated plain-memory regions (FastTrack-style epochs) ---
  kDescPlain,           // descriptor line group A: owner-written, helper-read
  kSlotCacheBatch,      // SlotCache slot array (single owner)
  kFiberStack,          // fiber stack re-arm (pool reuse)
  kAsyncOutcome,        // AsyncOp outcome fields (runner-written, ticket-read)

  // --- Platform surface (intrinsic checks; listed for reporting) ---
  kAtomicInit,          // Plat::Atomic::init — construction-only
  kAtomicPeek,          // Plat::Atomic::peek — quiescent debug read

  kSiteCount,
};

enum class Contract : std::uint8_t {
  kSeqCstOnly,     // the paper's step model: nothing below seq_cst is sound
  kAcquireLoad,    // load must be >= acquire (consumes a publication)
  kReleaseStore,   // store must be >= release (publishes preceding work)
  kAcqRelRmw,      // RMW must be >= acq_rel (link in a hand-off chain)
  kFutexSeq,       // one-way hand-off word: writes/RMWs publish (>= release),
                   // loads consume (>= acquire); the RMW never reads payload
  kFencedAnnounce, // relaxed store ordered by the publication-point fence
  kSeqCstFence,    // the fence itself must be seq_cst
  kOrderedWrites,  // relaxed ok; all writes must be pairwise HB-ordered
  kAdvisory,       // value is a hint; correctness never depends on it
  kAtomicOnly,     // RMW atomicity load-bearing, ordering is not
  kInitOnly,       // construction-only: location must be quiescent
  kQuiescentRead,  // debug read: no unordered writer may exist
};

struct SiteInfo {
  Site site;
  const char* name;
  Contract contract;
  const char* why;
};

// Indexed by Site value; keep in enum order (verified by site_info()).
inline constexpr SiteInfo kSiteTable[] = {
    {Site::kUnknown, "unknown", Contract::kSeqCstOnly,
     "unannotated operations carry the paper's full seq_cst obligation"},

    {Site::kEbrAnnounce, "ebr.announce", Contract::kFencedAnnounce,
     "ordered before the verify load by the publication-point fence"},
    {Site::kEbrEpochAnnounce, "ebr.epoch_announce", Contract::kFencedAnnounce,
     "same fence pattern; stale value conservatively blocks advancement"},
    {Site::kEbrPublishFence, "ebr.publish_fence", Contract::kSeqCstFence,
     "the Dekker publication point: orders announce vs. scan either-or"},
    {Site::kEbrVerifyLoad, "ebr.verify_load", Contract::kSeqCstOnly,
     "must be seq_cst to close the fence's either-or window"},
    {Site::kEbrEpochSelfLoad, "ebr.epoch_self_load", Contract::kAdvisory,
     "own single-writer word; skip-reannounce fast path only"},
    {Site::kEbrExit, "ebr.exit", Contract::kReleaseStore,
     "publishes the guard's critical-section reads to the collector scan"},
    {Site::kEbrAbandon, "ebr.abandon", Contract::kSeqCstOnly,
     "crash path keeps the strongest order; not performance sensitive"},
    {Site::kEbrRetireEpochLoad, "ebr.retire_epoch_load",
     Contract::kSeqCstOnly, "bucket epoch must not run ahead of the scan"},
    {Site::kEbrCollectEpochLoad, "ebr.collect_epoch_load",
     Contract::kSeqCstOnly, "grace arithmetic relies on the advance chain"},
    {Site::kEbrScanActive, "ebr.scan_active", Contract::kSeqCstOnly,
     "observing exit's release store closes the grace period"},
    {Site::kEbrScanEpoch, "ebr.scan_epoch", Contract::kSeqCstOnly,
     "paired with scan_active; fence-published epoch must be visible"},
    {Site::kEbrEpochAdvanceCas, "ebr.epoch_advance_cas",
     Contract::kSeqCstOnly, "advance chain carries every scanner's reads"},
    {Site::kEbrParticipantCount, "ebr.participant_count",
     Contract::kAtomicOnly,
     "gates iteration over construction-time participant slots"},

    {Site::kPoolHeadLoad, "pool.head_load", Contract::kAcquireLoad,
     "pairs with the pushing CAS: slot payload visible before reuse"},
    {Site::kPoolHeadCas, "pool.head_cas", Contract::kAcqRelRmw,
     "the hand-off edge of the freelist; tag increment kills ABA"},
    {Site::kPoolNextLoad, "pool.next_load", Contract::kAdvisory,
     "valid-or-null: a stale link loses the CAS, never derefs garbage"},
    {Site::kPoolNextStore, "pool.next_store", Contract::kAdvisory,
     "private until the head CAS publishes the chain"},

    {Site::kRetireRefsInit, "desc.retire_refs_init", Contract::kOrderedWrites,
     "owner-written before publication; ordered by the set-insert CAS"},
    {Site::kRetireRefsDrop, "desc.retire_refs_drop", Contract::kOrderedWrites,
     "all drops run on the retiring participant (EBR deleters), so acq_rel "
     "chains them; checked as writes that must be pairwise ordered"},
    {Site::kHelpClaimLoad, "desc.help_claim_load", Contract::kAdvisory,
     "claim is revocable; correctness never depends on who holds it"},
    {Site::kHelpClaimStore, "desc.help_claim_store", Contract::kAdvisory,
     "last-writer-wins is fine for an advisory claim"},
    {Site::kHelpClaimRelease, "desc.help_claim_release", Contract::kAdvisory,
     "failed release means someone revoked us; equally fine"},
    {Site::kClaimSkipsBump, "desc.claim_skips_bump", Contract::kAdvisory,
     "patience counter; bounded staleness only delays, never wedges"},
    {Site::kClaimSkipsReset, "desc.claim_skips_reset", Contract::kAdvisory,
     "reset races with bumps by design; bounded patience still holds"},

    {Site::kStatsBump, "proc.stats_bump", Contract::kOrderedWrites,
     "unsynchronized load-then-store is exact iff the slab has one writer; "
     "checked: all writes to a counter must be pairwise HB-ordered"},
    {Site::kSerialRefill, "proc.serial_refill", Contract::kAtomicOnly,
     "block handout needs uniqueness (RMW atomicity), not ordering"},
    {Site::kFastReadyLoad, "proc.fast_ready_load", Contract::kAdvisory,
     "cooldown gate; a stale read only routes to the slower path"},
    {Site::kFastReadyStore, "proc.fast_ready_store", Contract::kAdvisory,
     "flipped by the owner or its own EBR deleter; monotone per cycle"},

    {Site::kLogNoteUsed, "idem.log_note_used", Contract::kAdvisory,
     "racing writers store identical values (deterministic replay)"},

    {Site::kThinPublish, "thin.publish", Contract::kSeqCstOnly,
     "Dekker vs. the slow path's set insert (DESIGN.md §5.1): publish "
     "before reading the set, insert before probing the word"},
    {Site::kThinRelease, "thin.release", Contract::kSeqCstOnly,
     "failure detection (observed bit) gates descriptor reuse"},

    {Site::kWakeSeq, "wake.seq", Contract::kFutexSeq,
     "post's release RMW publishes work; prepare/wait's acquire loads "
     "consume it (futex shape — post never reads the protected payload)"},
    {Site::kWakeSinkInstall, "table.wake_sink_install",
     Contract::kReleaseStore, "sink vtable/state visible before any event"},
    {Site::kWakeSinkLoad, "table.wake_sink_load", Contract::kAcquireLoad,
     "one acquire load on the hot path when no sink is installed"},

    {Site::kAsyncStateCas, "async.state_cas", Contract::kAcqRelRmw,
     "park/wake/signal transitions hand the op between threads"},
    {Site::kAsyncStateStore, "async.state_store", Contract::kReleaseStore,
     "cycle start publishes the op's fields to release-event CASers"},
    {Site::kAsyncStateLoad, "async.state_load", Contract::kAcquireLoad,
     "done() consumers read the Outcome the completer published"},
    {Site::kAsyncRefsDrop, "async.refs_drop", Contract::kAcqRelRmw,
     "last unref deletes; both sides' accesses must be ordered"},
    {Site::kAsyncClientLive, "async.client_live", Contract::kReleaseStore,
     "crash() publishes; workers acquire-load before touching the session"},
    {Site::kAsyncInlineLatch, "async.inline_latch", Contract::kAdvisory,
     "a lock, not an RMW site: acquire-CAS take / release-store give; "
     "clock transfer is modeled through the engine's mutex events"},
    {Site::kAsyncInFlight, "async.in_flight", Contract::kAcqRelRmw,
     "shutdown's drain loop joins every completer's final writes"},

    {Site::kWqTopLoad, "wq.top_load", Contract::kAcquireLoad,
     "joins the last successful top CAS: slots at or past top are the "
     "thieves'; anything older is settled before we size the deque"},
    {Site::kWqTopCas, "wq.top_cas", Contract::kSeqCstOnly,
     "the linearization point of steal/take-last: both racers CAS the same "
     "top value and exactly one wins; seq_cst closes the Dekker with the "
     "owner's bottom reservation (Lê et al. 2013, DESIGN.md §8)"},
    {Site::kWqBottomOwnLoad, "wq.bottom_own_load", Contract::kAdvisory,
     "the owner is bottom's only writer; its own read needs no ordering"},
    {Site::kWqBottomPublish, "wq.bottom_publish", Contract::kReleaseStore,
     "push's bottom bump publishes the slot write to steal's acquire load"},
    {Site::kWqBottomReserve, "wq.bottom_reserve", Contract::kAdvisory,
     "take's speculative decrement; ordered against thieves' top reads by "
     "the seq_cst fence that follows it (wq.fence), not by this store"},
    {Site::kWqBottomStealLoad, "wq.bottom_steal_load", Contract::kAcquireLoad,
     "consumes push's release bump: the slot is visible before it is read"},
    {Site::kWqFence, "wq.fence", Contract::kSeqCstFence,
     "the owner-vs-thief Dekker point: reserve-then-read-top on the owner, "
     "read-top-then-read-bottom on the thief — one of them must see the "
     "other or both would claim the last element"},
    {Site::kWqRingPublish, "wq.ring_publish", Contract::kReleaseStore,
     "grow() publishes the copied ring before thieves can dereference it"},
    {Site::kWqRingLoad, "wq.ring_load", Contract::kAcquireLoad,
     "pairs with wq.ring_publish; old rings stay mapped until destruction, "
     "so a stale pointer still reads valid (if superseded) slots"},
    {Site::kWqSlot, "wq.slot", Contract::kAdvisory,
     "valid-or-discarded: a slot read is only trusted after the top CAS "
     "wins; a torn-or-stale value loses the CAS and is dropped"},
    {Site::kInjPushCas, "inj.push_cas", Contract::kSeqCstOnly,
     "producer side of the sleep Dekker: push-then-read-worker-state must "
     "not reorder against the worker's set-idle-then-probe (DESIGN.md §8)"},
    {Site::kInjTakeAll, "inj.take_all", Contract::kAcqRelRmw,
     "the exchange(nullptr) batch take — consumer pop() or a thief's "
     "drain_all(): acquire joins every producer's release, release "
     "continues the hand-off chain; rival exchanges get disjoint chains"},
    {Site::kInjPeek, "inj.peek", Contract::kSeqCstOnly,
     "worker side of the sleep Dekker: the pre-sleep emptiness probe must "
     "order after the set-idle store, or a push could be missed forever"},
    {Site::kInjNext, "inj.next", Contract::kAdvisory,
     "private until the head CAS publishes the node; the consumer reads it "
     "only after its exchange's acquire joined that publication"},
    {Site::kWkrState, "async.worker_state", Contract::kSeqCstOnly,
     "the wake-coalescing word: producer CAS idle->signalled vs. worker "
     "store idle + inbox probe is a store-buffering pattern; any weakening "
     "legalizes the lost-wake interleaving (DESIGN.md §8)"},

    {Site::kDescPlain, "desc.plain_fields", Contract::kOrderedWrites,
     "line group A: owner-written before publication, helper-read after "
     "observing the publication (set insert or thin word)"},
    {Site::kSlotCacheBatch, "pool.slot_cache", Contract::kOrderedWrites,
     "single-owner by construction (arena.hpp); deleters run on the owner"},
    {Site::kFiberStack, "fiber.stack", Contract::kOrderedWrites,
     "re-armed only when finished; pool hand-off via the pool mutex"},
    {Site::kAsyncOutcome, "async.outcome", Contract::kOrderedWrites,
     "runner-written before the kDone transition; ticket reads after"},

    {Site::kAtomicInit, "plat.atomic_init", Contract::kInitOnly,
     "relaxed store legal only while the location is quiescent"},
    {Site::kAtomicPeek, "plat.atomic_peek", Contract::kQuiescentRead,
     "relaxed debug read legal only with no unordered concurrent writer"},
};

static_assert(sizeof(kSiteTable) / sizeof(kSiteTable[0]) ==
                  static_cast<std::size_t>(Site::kSiteCount),
              "kSiteTable must have exactly one row per Site");

inline const SiteInfo& site_info(Site s) {
  const auto i = static_cast<std::size_t>(s);
  return kSiteTable[i < static_cast<std::size_t>(Site::kSiteCount) ? i : 0];
}

}  // namespace wfl::race
