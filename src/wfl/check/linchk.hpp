// A small exhaustive linearizability checker (Wing & Gong style).
//
// Theorem 4.2(3) claims the idempotence-simulated memory operations are
// linearizable. Tests discharge that claim by recording complete concurrent
// histories (invocation/response timestamps from the simulator's global
// slot clock) and asking this checker whether some legal sequential order
// exists that respects real time.
//
// The search is DFS over "which ops have been linearized so far" with
// memoization on (done-mask, abstract state): an operation may linearize
// next iff every not-yet-linearized operation's response is at or after its
// invocation (otherwise the other op finished strictly before this one
// began, and real-time order would be violated). Exponential in the worst
// case — intended for the short, targeted histories tests produce (<= 32
// operations per call), not for production monitoring.
//
// The abstract object semantics come from a Model policy:
//
//   struct Model {
//     using State = ...;                  // ==, and hash() -> size_t
//     static State initial();
//     // Post-state if `op` (kind/arg/ret) is legal from `s`, else nullopt.
//     static std::optional<State> apply(const State& s, const LinOp& op);
//   };
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "wfl/util/assert.hpp"

namespace wfl {

struct LinOp {
  int proc = 0;
  std::uint64_t invoke = 0;    // global time of invocation
  std::uint64_t response = 0;  // global time of response; >= invoke
  int kind = 0;                // model-specific opcode
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;      // second argument (e.g. CAS desired)
  std::uint64_t ret = 0;
};

// Single 32-bit register with Load/Store/Cas — the semantics of one
// idempotent Cell. ret of a Cas is 1 (success) or 0 (failure).
struct RegisterModel {
  enum Kind { kLoad = 0, kStore = 1, kCas = 2 };

  struct State {
    std::uint32_t value = 0;
    bool operator==(const State&) const = default;
    std::size_t hash() const { return value * 0x9E3779B97F4A7C15ULL >> 32; }
  };

  static State initial() { return {}; }
  static State initial(std::uint32_t v) { return State{v}; }

  static std::optional<State> apply(const State& s, const LinOp& op) {
    switch (op.kind) {
      case kLoad:
        if (op.ret != s.value) return std::nullopt;
        return s;
      case kStore:
        return State{static_cast<std::uint32_t>(op.arg)};
      case kCas: {
        const bool would_succeed = s.value == op.arg;
        if ((op.ret != 0) != would_succeed) return std::nullopt;
        return would_succeed ? State{static_cast<std::uint32_t>(op.arg2)} : s;
      }
      default:
        return std::nullopt;
    }
  }
};

namespace detail {

template <typename State>
struct LinKey {
  std::uint64_t mask;
  State state;
  bool operator==(const LinKey&) const = default;
};

template <typename State>
struct LinKeyHash {
  std::size_t operator()(const LinKey<State>& k) const {
    return k.state.hash() ^ (k.mask * 0xBF58476D1CE4E5B9ULL);
  }
};

}  // namespace detail

template <typename Model>
class LinChecker {
 public:
  using State = typename Model::State;

  explicit LinChecker(State initial) : initial_(std::move(initial)) {}
  LinChecker() : initial_(Model::initial()) {}

  // True iff `hist` (complete: every op has responded) is linearizable with
  // respect to Model starting from the initial state.
  bool check(const std::vector<LinOp>& hist) {
    WFL_CHECK_MSG(hist.size() <= 63, "history too long for mask-based DFS");
    for (const LinOp& op : hist) {
      WFL_CHECK_MSG(op.invoke <= op.response, "malformed op interval");
    }
    hist_ = &hist;
    seen_.clear();
    nodes_ = 0;
    return dfs(0, initial_);
  }

  // Search effort of the last check() — exported so tests can keep their
  // histories comfortably inside budget.
  std::uint64_t nodes_explored() const { return nodes_; }

 private:
  bool dfs(std::uint64_t done, State state) {
    const std::size_t n = hist_->size();
    if (done == (n == 64 ? ~0ull : (1ull << n) - 1)) return true;
    if (!seen_.insert({done, state}).second) return false;
    WFL_CHECK_MSG(++nodes_ < kMaxNodes,
                  "linearizability search exceeded node budget");

    // Earliest response among pending ops bounds who may linearize next.
    std::uint64_t frontier = ~0ull;
    for (std::size_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      frontier = std::min(frontier, (*hist_)[i].response);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if ((done >> i) & 1) continue;
      const LinOp& op = (*hist_)[i];
      if (op.invoke > frontier) continue;  // someone finished before it began
      std::optional<State> next = Model::apply(state, op);
      if (!next) continue;
      if (dfs(done | (1ull << i), *next)) return true;
    }
    return false;
  }

  static constexpr std::uint64_t kMaxNodes = 1u << 24;

  State initial_;
  const std::vector<LinOp>* hist_ = nullptr;
  std::unordered_set<detail::LinKey<State>, detail::LinKeyHash<State>> seen_;
  std::uint64_t nodes_ = 0;
};

// Convenience entry point.
template <typename Model>
bool linearizable(const std::vector<LinOp>& hist,
                  typename Model::State initial = Model::initial()) {
  LinChecker<Model> chk(std::move(initial));
  return chk.check(hist);
}

}  // namespace wfl
