// Dynamic happens-before analysis over the simulator's deterministic
// interleavings (the tentpole of the analysis layer; see DESIGN.md §7).
//
// Three cooperating pieces:
//
//   1. CheckedPlat (platform/checked.hpp) forwards every Plat::Atomic
//      operation — with its address, operation kind, declared memory_order
//      and value — into the engine via the hooks below.
//   2. Raw std::atomic sites that PRs 4-6 weakened below seq_cst carry
//      WFL_CHK_ATOMIC/WFL_CHK_FENCE annotations naming their Site in
//      check/ordering_contracts.hpp; the engine audits the declared
//      contract and feeds the same vector-clock model.
//   3. Known plain-memory protocols (descriptor line group A, SlotCache
//      batches, fiber stacks, AsyncOp outcomes) carry WFL_PLAIN_READ /
//      WFL_PLAIN_WRITE region annotations checked FastTrack-style against
//      the clocks.
//
// The model: one vector clock per logical process (simulator pid; the
// setup/teardown main context is process slot 0). Synchronization edges are
// derived from the *declared* orders — a release-class store replaces the
// location's sync clock, an RMW joins into it (release-sequence
// continuation), an acquire-class load joins it into the reader, relaxed
// loads defer the join until an acquire fence, release fences arm
// subsequent relaxed stores, and seq_cst operations additionally join a
// global SC clock both ways (the simulator executes one total order, and
// C++ guarantees a single total order S over seq_cst operations, so
// treating observed SC predecessors as ordered is sound for auditing this
// execution). A conflicting plain access not ordered by those edges is a
// finding; so is an operation weaker than its site's contract. Findings
// carry a reproducer: the simulator seed plus the slot trace of the
// unordered pair.
//
// When no engine is installed every hook is one relaxed load and a
// predicted branch; RealPlat builds and benches pay nothing else.
// Engine state is owned by the installing thread. Events raised from other
// OS threads (RealPlat tests in the same binary) only *poison* the touched
// location under the engine mutex — cross-thread interleavings are TSan's
// job (ci: tsan), not this model's.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "wfl/check/ordering_contracts.hpp"

namespace wfl::race {

enum class Op : std::uint8_t {
  kLoad,
  kStore,
  kCasOk,
  kCasFail,  // value = the observed (expected-out) word
  kExchange,
  kFetchAdd,  // value = the post-add word
  kInit,
  kPeek,
};

struct Finding {
  const char* kind;  // "contract" | "unfenced-announce" | "plain-race" |
                     // "init-race" | "peek-race" | "shadow"
  Site site;
  const void* addr;
  std::string message;  // full text, includes the seed+slot reproducer
};

class RaceEngine {
 public:
  RaceEngine();
  ~RaceEngine();

  RaceEngine(const RaceEngine&) = delete;
  RaceEngine& operator=(const RaceEngine&) = delete;

  // Make this engine the process-global event sink. One at a time; the
  // destructor uninstalls. Must be called on the owning (constructing)
  // thread — the thread that runs the simulator.
  void install();
  void uninstall();

  // Seeded-mutation support for detector self-tests: the engine *model* is
  // mutated, not the program. kDropFence ignores fence events at `site`
  // (the detector behaves as if the fence were deleted); kDowngradeOrder
  // treats operations at `site` as having `order` instead of their declared
  // order. Under the simulator all fibers share one OS thread, so really
  // weakening an order is unobservable at runtime — mutating the model is
  // the faithful way to test "would we catch this edit?".
  struct Mutation {
    enum class Kind : std::uint8_t { kNone, kDropFence, kDowngradeOrder };
    Kind kind = Kind::kNone;
    Site site = Site::kUnknown;
    std::memory_order order = std::memory_order_relaxed;
  };
  void set_mutation(Mutation m);

  const std::vector<Finding>& findings() const;
  void clear_findings();

  std::uint64_t events() const;         // processed on the owner thread
  std::uint64_t foreign_events() const; // poison-only, from other threads
  std::uint64_t last_seed() const;      // seed of the most recent sim run

  // Print all findings plus, per finding, the tail of the event trace
  // filtered to the conflicting address (the "shrunk" reproducer).
  void report(std::ostream& os) const;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// Process-global engine pointer. Relaxed access: installation happens-before
// use via test sequencing on the owner thread; other threads only ever
// poison under the engine's own mutex.
inline std::atomic<RaceEngine*> g_engine{nullptr};

inline RaceEngine* engine() {
  return g_engine.load(std::memory_order_relaxed);
}

// Out-of-line event sinks (race.cpp).
void atomic_event_slow(RaceEngine* e, const void* addr, Op op,
                       std::memory_order order, Site site, std::uint64_t val);
void fence_event_slow(RaceEngine* e, std::memory_order order, Site site);
void plain_event_slow(RaceEngine* e, const void* region, bool is_write,
                      Site site);
void lifetime_event_slow(RaceEngine* e, const void* addr, bool created,
                         std::uint64_t val);
void mutex_event_slow(RaceEngine* e, const void* mtx, bool acquire);
void tag_next_slow(RaceEngine* e, Site site);
void run_boundary_slow(RaceEngine* e, bool entering, std::uint64_t seed);

// Inline front doors: a relaxed load + branch when no engine is installed.
inline void atomic_event(const void* addr, Op op, std::memory_order order,
                         Site site, std::uint64_t val) {
  if (RaceEngine* e = engine()) atomic_event_slow(e, addr, op, order, site, val);
}
inline void fence_event(std::memory_order order, Site site) {
  if (RaceEngine* e = engine()) fence_event_slow(e, order, site);
}
inline void plain_read(const void* region, Site site) {
  if (RaceEngine* e = engine()) plain_event_slow(e, region, false, site);
}
inline void plain_write(const void* region, Site site) {
  if (RaceEngine* e = engine()) plain_event_slow(e, region, true, site);
}
// Atomic cell lifetime (CheckedPlat ctor/dtor): seeds the shadow value and
// retires the address so heap reuse cannot alias stale state.
inline void created(const void* addr, std::uint64_t val) {
  if (RaceEngine* e = engine()) lifetime_event_slow(e, addr, true, val);
}
inline void destroyed(const void* addr) {
  if (RaceEngine* e = engine()) lifetime_event_slow(e, addr, false, 0);
}
inline void mutex_acquire(const void* mtx) {
  if (RaceEngine* e = engine()) mutex_event_slow(e, mtx, true);
}
inline void mutex_release(const void* mtx) {
  if (RaceEngine* e = engine()) mutex_event_slow(e, mtx, false);
}

// RAII companion for a std::lock_guard: declare one right after the guard
// so lock-model events bracket the critical section even on early returns.
class MutexScope {
 public:
  explicit MutexScope(const void* mtx) : mtx_(mtx) { mutex_acquire(mtx_); }
  ~MutexScope() { mutex_release(mtx_); }
  MutexScope(const MutexScope&) = delete;
  MutexScope& operator=(const MutexScope&) = delete;

 private:
  const void* mtx_;
};
// Tag the *next* atomic event of the calling logical process with `site`
// (for Plat::Atomic ops, whose call sites can't pass one — e.g. the
// thin-word publish CAS).
inline void tag_next(Site site) {
  if (RaceEngine* e = engine()) tag_next_slow(e, site);
}
// Simulator run boundary: joins all clocks (everything before the run
// happens-before everything in it, and the run happens-before teardown)
// and records the seed for reproducers. Called from Simulator::run().
inline void run_boundary(bool entering, std::uint64_t seed) {
  if (RaceEngine* e = engine()) run_boundary_slow(e, entering, seed);
}

}  // namespace wfl::race

// Annotation macros used at product call sites. `op` is an Op enumerator
// name, `ord` a memory_order suffix (relaxed/acquire/...), `site` a Site
// enumerator name.
#define WFL_CHK_ATOMIC(addr, op, ord, site, val)                            \
  ::wfl::race::atomic_event((addr), ::wfl::race::Op::op,                    \
                            std::memory_order_##ord,                        \
                            ::wfl::race::Site::site,                        \
                            static_cast<std::uint64_t>(val))
#define WFL_CHK_FENCE(ord, site) \
  ::wfl::race::fence_event(std::memory_order_##ord, ::wfl::race::Site::site)
#define WFL_PLAIN_READ(region, site) \
  ::wfl::race::plain_read((region), ::wfl::race::Site::site)
#define WFL_PLAIN_WRITE(region, site) \
  ::wfl::race::plain_write((region), ::wfl::race::Site::site)
#define WFL_CHK_TAG(site) ::wfl::race::tag_next(::wfl::race::Site::site)
