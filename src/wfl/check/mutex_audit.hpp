// Mutual-exclusion audit for Definition 4.3 (mutual exclusion with
// idempotence).
//
// For every lock we keep two idempotent cells:
//   * busy[ℓ]  — set to 1 on critical-section entry, 0 on exit. A thunk
//     that observes busy[ℓ] != 0 on entry has caught another critical
//     section holding ℓ mid-flight: a mutual-exclusion violation.
//   * count[ℓ] — incremented once per winning thunk (read-modify-write).
//     After the run, count[ℓ] must equal the number of *wins* whose lock
//     set contains ℓ: fewer means a lost update (two sections ran
//     concurrently), more means a thunk ran logically more than once
//     (idempotence violation).
//
// Both detectors are free of false positives under helping: a straggler
// replaying a finished run gets all its loads from the agreement log (it
// sees the run's historical values, not the current cell), and its
// physical stores are single-shot CASes against superseded words, which
// fail with no effect. So a reported violation is a real interleaving of
// two distinct critical sections — never an artifact of replay.
//
// Wall-clock interval recording was rejected for this job: any recording
// around the thunk body measures a superset of the true interval (clock
// reads sit on the far side of scheduler yields), and interval-overlap on
// supersets flags legal executions. The in-band flags measure exactly the
// steps the Definition talks about.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

template <typename Plat>
class MutexAudit {
 public:
  explicit MutexAudit(int num_locks) {
    WFL_CHECK(num_locks > 0);
    for (int i = 0; i < num_locks; ++i) {
      busy_.push_back(std::make_unique<Cell<Plat>>(0u));
      count_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
    violations_.assign(static_cast<std::size_t>(num_locks), 0);
  }

  int num_locks() const { return static_cast<int>(busy_.size()); }

  // Instrumented-op cost of guard() for a lock set of size L: 4L + 2.
  // Callers must budget max_thunk_steps accordingly.
  static constexpr std::uint32_t thunk_ops(std::uint32_t lock_count) {
    return 4 * lock_count + 2;
  }

  // The guarded critical section: flags up on every lock, one counter
  // bump on the first lock, flags down. Safe to run helped (see header).
  // `ids` must outlive the attempt (point at the caller's lock array).
  void guard(IdemCtx<Plat>& m, std::span<const std::uint32_t> ids) {
    for (const std::uint32_t l : ids) {
      if (m.load(*busy_[l]) != 0) {
        ++violations_[l];  // plain counter: instrumentation, not model state
      }
      m.store(*busy_[l], 1);
    }
    const std::uint32_t v = m.load(*count_[ids[0]]);
    m.store(*count_[ids[0]], v + 1);
    for (const std::uint32_t l : ids) {
      m.store(*busy_[l], 0);
    }
  }

  // Post-run audit. `wins_with_first_lock[ℓ]` = number of returned wins
  // whose first lock was ℓ; `slack` bounds attempts that never returned
  // (e.g. a crashed process's in-flight attempt).
  //
  // `allow_inflight_flags`: with a crashed winner whose thunk no later
  // overlapping attempt came along to complete (celebrateIfWon only fires
  // when lock sets meet), flags of that one section legitimately stay
  // raised at teardown — the section simply never finished, which is not
  // an exclusion violation. Crash harnesses pass true and bound
  // `raised_flags` by the victim's lock-set size instead.
  struct Report {
    std::uint64_t flag_violations = 0;
    std::uint64_t lost_updates = 0;
    std::uint64_t duplicated_runs = 0;
    std::uint64_t raised_flags = 0;  // busy flags still up at audit time
  };

  Report audit(std::span<const std::uint64_t> wins_with_first_lock,
               std::uint64_t slack = 0,
               bool allow_inflight_flags = false) const {
    WFL_CHECK(wins_with_first_lock.size() == busy_.size());
    Report r;
    for (std::size_t l = 0; l < busy_.size(); ++l) {
      r.flag_violations += violations_[l];
      const std::uint64_t counted = count_[l]->peek();
      const std::uint64_t known = wins_with_first_lock[l];
      if (counted < known) r.lost_updates += known - counted;
      if (counted > known + slack) {
        r.duplicated_runs += counted - (known + slack);
      }
      if (busy_[l]->peek() != 0) {
        ++r.raised_flags;
        WFL_CHECK_MSG(allow_inflight_flags,
                      "a busy flag was left raised after quiescence");
      }
    }
    return r;
  }

 private:
  std::vector<std::unique_ptr<Cell<Plat>>> busy_;
  std::vector<std::unique_ptr<Cell<Plat>>> count_;
  std::vector<std::uint64_t> violations_;
};

}  // namespace wfl
