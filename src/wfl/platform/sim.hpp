// SimPlat: execute under the deterministic simulator.
//
// Identical interface to RealPlat, so every algorithm template can be
// instantiated for either. Under SimPlat each shared-memory operation first
// counts one step for the running logical process and yields to the
// scheduler — making the operation occur exactly at its granted time slot,
// which is the paper's execution model.
//
// Outside an active simulation (setup/teardown on the main context) the
// hooks degrade to no-ops so fixtures can initialize shared structures.
#pragma once

#include <atomic>
#include <cstdint>

#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {

struct SimPlat {
  // Runtimes must not drive this platform from worker OS threads: step()
  // yields into the fiber scheduler, which is only valid on a simulator
  // fiber (AsyncExecutor checks this at construction).
  static constexpr bool kSimulated = true;

  static void step() {
    Simulator* sim = Simulator::current();
    if (sim != nullptr && sim->current_pid() >= 0) {
      sim->count_step_and_yield();
    }
  }

  static std::uint64_t steps() {
    Simulator* sim = Simulator::current();
    if (sim != nullptr && sim->current_pid() >= 0) {
      return sim->current_steps();
    }
    return 0;
  }

  static std::uint64_t rand_u64() {
    Simulator* sim = Simulator::current();
    if (sim != nullptr && sim->current_pid() >= 0) {
      return sim->rand_u64();
    }
    // Setup-context fallback; deterministic but shared.
    static Xoshiro256 fallback{0xC0FFEEULL};
    return fallback.next();
  }

  // WakeHandle, deterministic flavour: same prepare/wait/post shape as
  // RealPlat::Wake, but wait() burns simulator-scheduled steps instead of
  // blocking the OS thread — each step yields to the simulator, so the
  // poster (another sim fiber) gets scheduled and the wait's duration is a
  // pure function of the schedule. This is what lets the simulator drive
  // the async executor's park/wake paths bit-for-bit reproducibly.
  class Wake {
   public:
    std::uint32_t prepare() const {
      return seq_.load(std::memory_order_acquire);
    }
    void wait(std::uint32_t seen) const {
      while (seq_.load(std::memory_order_acquire) == seen) SimPlat::step();
    }
    void post() { seq_.fetch_add(1, std::memory_order_release); }
    void post_all() { post(); }

   private:
    mutable std::atomic<std::uint32_t> seq_{0};
  };

  template <typename T>
  class Atomic {
   public:
    Atomic() : v_{} {}
    explicit Atomic(T v) : v_(v) {}

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    // All fibers share one OS thread, so plain operations would already be
    // data-race-free; we keep std::atomic so the same template also behaves
    // if a test drives SimPlat structures from the main thread.
    T load() const {
      step();
      return v_.load(std::memory_order_seq_cst);
    }

    void store(T v) {
      step();
      v_.store(v, std::memory_order_seq_cst);
    }

    bool cas(T expected, T desired) {
      step();
      return v_.compare_exchange_strong(expected, desired,
                                        std::memory_order_seq_cst);
    }

    T exchange(T v) {
      step();
      return v_.exchange(v, std::memory_order_seq_cst);
    }

    T fetch_add(T v) {
      step();
      return v_.fetch_add(v, std::memory_order_seq_cst);
    }

    void init(T v) { v_.store(v, std::memory_order_relaxed); }
    // Relaxed quiescent debug read; same contract as RealPlat::peek().
    T peek() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<T> v_;
  };
};

}  // namespace wfl
