// RealPlat: execute on OS threads with std::atomic.
//
// Every concurrent algorithm in this library is a template over a Platform
// policy. The policy supplies atomics with a *step hook* (each shared-memory
// operation is one "step" in the paper's model), a per-process step counter
// (delays are "until N of my own steps"), and a per-process PRNG.
//
// RealPlat counts steps in a thread_local and uses sequentially consistent
// atomics throughout. The algorithms' proofs are stated against an
// interleaving model; we deliberately do not weaken orderings (Core
// Guidelines CP.100/101: no cleverness in lock-free code without a proof for
// the weaker order).
#pragma once

#include <atomic>
#include <cstdint>

#include "wfl/util/rng.hpp"

namespace wfl {

struct RealPlat {
  // Safe to drive from arbitrary OS threads (cf. SimPlat::kSimulated).
  static constexpr bool kSimulated = false;

  static std::uint64_t& steps_ref() {
    thread_local std::uint64_t steps = 0;
    return steps;
  }

  static Xoshiro256& rng_ref() {
    thread_local Xoshiro256 rng{0x9E3779B97F4A7C15ULL};
    return rng;
  }

  // One explicit local step: used by the delay loops of Algorithm 3 and
  // counted exactly like a shared-memory operation.
  static void step() { ++steps_ref(); }

  static std::uint64_t steps() { return steps_ref(); }

  static std::uint64_t rand_u64() { return rng_ref().next(); }

  // Reseed the calling thread's PRNG (tests want reproducibility).
  static void seed_rng(std::uint64_t seed) { rng_ref().reseed(seed); }

  // WakeHandle: the platform's thread-blocking primitive, used by runtimes
  // (async executor workers, ticket waiters) to sleep until posted instead
  // of spinning. Futex-backed: std::atomic<uint32_t>::wait lowers to
  // FUTEX_WAIT on Linux. The sequence counter makes it race-free in the
  // standard prepare/check/wait shape:
  //
  //   const auto seen = wake.prepare();
  //   if (!work_available()) wake.wait(seen);
  //
  // A post() between prepare() and wait() advances the sequence, so the
  // wait returns immediately — no lost wakeups. NOT part of the paper's
  // step model (like reclamation and registration, DESIGN.md #2): nothing
  // on an attempt path ever blocks on one.
  class Wake {
   public:
    std::uint32_t prepare() const {
      return seq_.load(std::memory_order_acquire);
    }
    void wait(std::uint32_t seen) const { seq_.wait(seen); }
    void post() {
      seq_.fetch_add(1, std::memory_order_release);
      seq_.notify_one();
    }
    void post_all() {
      seq_.fetch_add(1, std::memory_order_release);
      seq_.notify_all();
    }

   private:
    mutable std::atomic<std::uint32_t> seq_{0};
  };

  template <typename T>
  class Atomic {
   public:
    Atomic() : v_{} {}
    explicit Atomic(T v) : v_(v) {}

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load() const {
      step();
      return v_.load(std::memory_order_seq_cst);
    }

    void store(T v) {
      step();
      v_.store(v, std::memory_order_seq_cst);
    }

    // Single-shot CAS (the paper's CAS instruction). Returns true on success;
    // does not loop.
    bool cas(T expected, T desired) {
      step();
      return v_.compare_exchange_strong(expected, desired,
                                        std::memory_order_seq_cst);
    }

    T exchange(T v) {
      step();
      return v_.exchange(v, std::memory_order_seq_cst);
    }

    T fetch_add(T v) {
      step();
      return v_.fetch_add(v, std::memory_order_seq_cst);
    }

    // Initialization-time access: not a step, not concurrency-safe. Only for
    // construction/reset paths that happen-before any sharing.
    void init(T v) { v_.store(v, std::memory_order_relaxed); }
    // Quiescent debug read: not a step. Relaxed, matching the documented
    // contract — callers (post-run assertions, stats snapshots, the thin
    // table debug peek) must already be ordered after every writer; nothing
    // load-bearing consumes a peek. Audited dynamically by CheckedPlat's
    // kQuiescentRead check (check/ordering_contracts.hpp).
    T peek() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<T> v_;
  };
};

}  // namespace wfl
