// CheckedPlat: SimPlat plus happens-before instrumentation.
//
// The third platform (after RealPlat and SimPlat). It satisfies the same
// policy concept — Atomic<T>, Wake, step()/steps()/rand_u64(), kSimulated —
// by delegating scheduling to SimPlat, and additionally reports every
// shared-memory operation (address, op kind, declared memory_order, value)
// to the analysis engine in check/race.hpp. Instantiating any algorithm
// template with CheckedPlat instead of SimPlat re-runs it, bit-for-bit on
// the same schedule (the hooks consume no steps and no randomness), under
// the vector-clock race and ordering-contract checker.
//
// Values are carried into the engine as 64-bit images (memcpy-encoded) so
// the shadow-value check can detect un-instrumented writes; wider or
// non-trivial T degrade to 0 and skip shadow checking.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "wfl/check/race.hpp"
#include "wfl/platform/sim.hpp"

namespace wfl {

struct CheckedPlat {
  static constexpr bool kSimulated = true;  // same driving rules as SimPlat

  static void step() { SimPlat::step(); }
  static std::uint64_t steps() { return SimPlat::steps(); }
  static std::uint64_t rand_u64() { return SimPlat::rand_u64(); }

  template <typename T>
  static std::uint64_t enc(T v) {
    if constexpr (std::is_trivially_copyable_v<T> && sizeof(T) <= 8) {
      std::uint64_t x = 0;
      std::memcpy(&x, &v, sizeof(T));
      return x;
    } else {
      return 0;
    }
  }

  class Wake {
   public:
    // Lifetime hooks: Wakes live inside heap records (AsyncOp) whose
    // addresses get reused; retire the word so a successor at the same
    // address starts from fresh shadow state.
    Wake() { race::created(&seq_, 0); }
    ~Wake() { race::destroyed(&seq_); }

    std::uint32_t prepare() const {
      const std::uint32_t s = seq_.load(std::memory_order_acquire);
      WFL_CHK_ATOMIC(&seq_, kLoad, acquire, kWakeSeq, s);
      return s;
    }
    void wait(std::uint32_t seen) const {
      for (;;) {
        const std::uint32_t s = seq_.load(std::memory_order_acquire);
        WFL_CHK_ATOMIC(&seq_, kLoad, acquire, kWakeSeq, s);
        if (s != seen) return;
        CheckedPlat::step();
      }
    }
    void post() {
      const std::uint32_t prev = seq_.fetch_add(1, std::memory_order_release);
      WFL_CHK_ATOMIC(&seq_, kFetchAdd, release, kWakeSeq, prev + 1);
    }
    void post_all() { post(); }

   private:
    mutable std::atomic<std::uint32_t> seq_{0};
  };

  template <typename T>
  class Atomic {
   public:
    Atomic() : v_{} { race::created(&v_, enc(T{})); }
    explicit Atomic(T v) : v_(v) { race::created(&v_, enc(v)); }
    ~Atomic() { race::destroyed(&v_); }

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load() const {
      step();
      const T v = v_.load(std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&v_, kLoad, seq_cst, kUnknown, enc(v));
      return v;
    }

    void store(T v) {
      step();
      v_.store(v, std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&v_, kStore, seq_cst, kUnknown, enc(v));
    }

    bool cas(T expected, T desired) {
      step();
      T observed = expected;
      const bool ok = v_.compare_exchange_strong(observed, desired,
                                                 std::memory_order_seq_cst);
      if (ok) {
        WFL_CHK_ATOMIC(&v_, kCasOk, seq_cst, kUnknown, enc(desired));
      } else {
        WFL_CHK_ATOMIC(&v_, kCasFail, seq_cst, kUnknown, enc(observed));
      }
      return ok;
    }

    T exchange(T v) {
      step();
      const T prev = v_.exchange(v, std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&v_, kExchange, seq_cst, kUnknown, enc(v));
      return prev;
    }

    T fetch_add(T v) {
      step();
      const T prev = v_.fetch_add(v, std::memory_order_seq_cst);
      WFL_CHK_ATOMIC(&v_, kFetchAdd, seq_cst, kUnknown,
                     enc(static_cast<T>(prev + v)));
      return prev;
    }

    // Audited forms of the quiescent accessors (contracts kInitOnly /
    // kQuiescentRead): the engine checks the location really is quiescent.
    void init(T v) {
      v_.store(v, std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&v_, kInit, relaxed, kAtomicInit, enc(v));
    }
    T peek() const {
      const T v = v_.load(std::memory_order_relaxed);
      WFL_CHK_ATOMIC(&v_, kPeek, relaxed, kAtomicPeek, enc(v));
      return v;
    }

   private:
    std::atomic<T> v_;
  };
};

}  // namespace wfl
