// Umbrella header for the wflock library.
//
// Quickstart:
//
//   using Plat = wfl::RealPlat;
//   wfl::LockConfig cfg;           // κ, L, T bounds + delay mode
//   wfl::LockSpace<Plat> space(cfg, /*max_procs=*/8, /*num_locks=*/100);
//   wfl::Session<Plat> session(space);        // RAII, once per thread
//   wfl::Cell<Plat> balance{100};
//   wfl::StaticLockSet<2> locks({3, 7}, cfg);   // sorted+deduped+checked
//   wfl::Outcome o = wfl::submit(session, locks,
//       [&](wfl::IdemCtx<Plat>& m) {
//         m.store(balance, m.load(balance) + 1);  // the critical section
//       });  // Policy::one_shot() default; o.won / o.attempts / steps
//
// The same code runs deterministically under the simulator by swapping
// Plat for wfl::SimPlat and executing inside wfl::Simulator processes.
#pragma once

#include "wfl/active/active_set.hpp"
#include "wfl/active/multi_set.hpp"
#include "wfl/apps/bank.hpp"
#include "wfl/apps/bst.hpp"
#include "wfl/apps/graph.hpp"
#include "wfl/apps/hashmap.hpp"
#include "wfl/apps/list.hpp"
#include "wfl/apps/philosophers.hpp"
#include "wfl/apps/queue.hpp"
#include "wfl/apps/skiplist.hpp"
#include "wfl/baseline/backends.hpp"
#include "wfl/baseline/herlihy.hpp"
#include "wfl/baseline/lehmann_rabin.hpp"
#include "wfl/baseline/mutex2pl.hpp"
#include "wfl/baseline/mutex2pl_backend.hpp"
#include "wfl/baseline/spin2pl.hpp"
#include "wfl/baseline/spin2pl_backend.hpp"
#include "wfl/baseline/turek.hpp"
#include "wfl/baseline/turek_backend.hpp"
#include "wfl/core/adaptive.hpp"
#include "wfl/core/adaptive_backend.hpp"
#include "wfl/core/async_executor.hpp"
#include "wfl/core/attempt.hpp"
#include "wfl/core/backend.hpp"
#include "wfl/core/config.hpp"
#include "wfl/core/descriptor.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_set.hpp"
#include "wfl/core/lock_space.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/process.hpp"
#include "wfl/core/retry.hpp"
#include "wfl/core/session.hpp"
#include "wfl/core/shm_table.hpp"
#include "wfl/core/txn.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/idem/idem.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/mem/ebr.hpp"
#include "wfl/platform/checked.hpp"
#include "wfl/platform/real.hpp"
#include "wfl/platform/sim.hpp"
#include "wfl/sim/sim.hpp"
#include "wfl/util/rng.hpp"
#include "wfl/util/stats.hpp"
