// Application substrate: a chained hash map with one lock per bucket.
//
// This is the k/v-store shape the paper's tryLocks fit naturally:
//   * put / erase / get_locked touch one bucket — L = 1;
//   * swap(k1, k2) atomically exchanges the values of two keys in two
//     buckets — L = 2, the canonical "multi-word atomic without a global
//     lock" pattern (same shape as the bank-transfer workload).
//
// Unlike LockedList/LockedBst, mutators re-walk the chain *inside* the
// critical section (the bucket lock serializes the whole bucket), so there
// is no optimistic-validation dance: the walk is the validation. Chains are
// capped at kMaxChain so the in-thunk walk has a static operation budget —
// required both by the thunk-length bound T of the paper and by the
// idempotence log capacity (kMaxThunkOps). A put into a full chain returns
// kFull rather than growing: this substrate trades resizing for bounded
// critical sections (document-level trade-off; size nbuckets for the load).
//
// Erased nodes are marked dead and unlinked under the bucket lock but not
// recycled until quiescent (same era-free policy as the other substrates).
// The unlocked get() is weakly consistent: it can read through a node
// unlinked moments ago — the same semantics as the lazy list's contains.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

inline constexpr std::uint32_t kMapNil = 0xFFFFFFFFu;
inline constexpr std::uint32_t kMaxChain = 10;

// Result codes published through the per-process result cell.
enum : std::uint32_t {
  kMapPending = 0,
  kMapOk = 1,       // mutation applied
  kMapExists = 2,   // put: key already present (value updated)
  kMapAbsent = 3,   // erase/swap/get: key not found
  kMapFull = 4,     // put: chain at kMaxChain, key not inserted
};

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedHashMap {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedHashMap requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Bucket b is protected by lock id b; `space` needs >= nbuckets locks and
  // max_thunk_steps >= thunk_step_budget().
  LockedHashMap(Space& space, std::uint32_t nbuckets,
                std::uint32_t node_capacity)
      : space_(space), nbuckets_(nbuckets), pool_(node_capacity) {
    WFL_CHECK(nbuckets >= 1);
    WFL_CHECK(static_cast<int>(nbuckets) <= space.num_locks());
    WFL_CHECK_MSG(space.config().max_thunk_steps >= thunk_step_budget(),
                  "configure LockConfig::max_thunk_steps >= "
                  "LockedHashMap::thunk_step_budget()");
    heads_.reserve(nbuckets);
    sinks_.reserve(nbuckets);
    for (std::uint32_t b = 0; b < nbuckets; ++b) {
      heads_.push_back(std::make_unique<Cell<Plat>>(kMapNil));
      sinks_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
      out_vals_.push_back(std::make_unique<Cell<Plat>>(0u));
      batch_results_.emplace_back();
    }
  }

  // Worst-case instrumented operations of the widest thunk (swap: two
  // bounded chain walks plus the exchange and result stores).
  static constexpr std::uint32_t thunk_step_budget() {
    return 4 * (kMaxChain + 2) + 8;
  }

  // Upsert. Returns kMapOk (inserted), kMapExists (value replaced) or
  // kMapFull. Retries internally until an attempt wins its locks.
  std::uint32_t put(Sess& session, std::uint64_t key, std::uint32_t value,
                    std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    const std::uint32_t b = bucket_of(key);
    const std::uint32_t fresh = pool_.alloc();
    {
      Node& n = pool_.at(fresh);
      n.key = key;
      n.val.init(value);
      n.next.init(kMapNil);
      n.dead.init(0);
    }
    Cell<Plat>& res = result_of(session);
    Cell<Plat>* res_ptr = &res;
    const StaticLockSet<1> locks{b};
    const Outcome o = B::submit(
        session, locks,
        [this, b, key, value, fresh, res_ptr](IdemCtx<Plat>& m) {
          Cell<Plat>& head = *heads_[b];
          std::uint32_t len = 0;
          std::uint32_t cur = m.load(head);
          while (cur != kMapNil) {
            Node& n = pool_.at(cur);
            if (n.key == key) {  // keys immutable: plain read is safe
              m.store(n.val, value);
              m.store(*res_ptr, kMapExists);
              return;
            }
            ++len;
            cur = m.load(n.next);
          }
          if (len >= kMaxChain) {
            m.store(*res_ptr, kMapFull);
            return;
          }
          // Link at head. `fresh` is private to this thunk instance; all
          // runs agree on this branch, so it is touched iff it is linked.
          Node& f = pool_.at(fresh);
          m.store(f.next, m.load(head));
          m.store(head, fresh);
          m.store(*res_ptr, kMapOk);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    const std::uint32_t r = res.peek();
    if (r != kMapOk) pool_.free(fresh);  // thunk never touched it
    return r;
  }

  // One batch element for put_batch.
  struct Put {
    std::uint64_t key;
    std::uint32_t value;
  };

  // Batch upsert: submits every put in order through the backend's
  // (possibly amortized) batch path under Policy::retry() — batch entries
  // are run-to-completion, matching put(). `results`, when non-null, must
  // hold xs.size() slots and receives each op's kMap* code. Spans larger
  // than kMaxBatchOps are chunked transparently; each op writes its result
  // through a per-(process, batch-slot) cell in stable storage, so helper
  // replays after the batch returns stay harmless (same argument as the
  // per-process result cells).
  static constexpr std::size_t kMaxBatchOps = 32;

  BatchOutcome put_batch(Sess& session, std::span<const Put> xs,
                         std::uint32_t* results = nullptr,
                         std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    using Op = PreparedOp<Plat>;
    BatchOutcome total;
    std::size_t done = 0;
    while (done < xs.size()) {
      const std::size_t n = std::min(kMaxBatchOps, xs.size() - done);
      alignas(Op) unsigned char raw[sizeof(Op) * kMaxBatchOps];
      Op* ops = reinterpret_cast<Op*>(raw);
      std::uint32_t fresh_nodes[kMaxBatchOps];
      for (std::size_t i = 0; i < n; ++i) {
        const Put& put_op = xs[done + i];
        const std::uint32_t b = bucket_of(put_op.key);
        const std::uint32_t fresh = pool_.alloc();
        fresh_nodes[i] = fresh;
        {
          Node& node = pool_.at(fresh);
          node.key = put_op.key;
          node.val.init(put_op.value);
          node.next.init(kMapNil);
          node.dead.init(0);
        }
        Cell<Plat>* res_ptr = &batch_result_of(session, i);
        const std::uint64_t key = put_op.key;
        const std::uint32_t value = put_op.value;
        const StaticLockSet<1> locks{b};
        ::new (static_cast<void*>(&ops[i]))
            Op(locks, [this, b, key, value, fresh, res_ptr](
                          IdemCtx<Plat>& m) {
              Cell<Plat>& head = *heads_[b];
              std::uint32_t len = 0;
              std::uint32_t cur = m.load(head);
              while (cur != kMapNil) {
                Node& node = pool_.at(cur);
                if (node.key == key) {
                  m.store(node.val, value);
                  m.store(*res_ptr, kMapExists);
                  return;
                }
                ++len;
                cur = m.load(node.next);
              }
              if (len >= kMaxChain) {
                m.store(*res_ptr, kMapFull);
                return;
              }
              Node& f = pool_.at(fresh);
              m.store(f.next, m.load(head));
              m.store(head, fresh);
              m.store(*res_ptr, kMapOk);
            });
      }
      total += backend_submit_batch<B>(
          session, std::span<const Op>(ops, n), Policy::retry());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t r = batch_result_of(session, i).peek();
        if (r != kMapOk) pool_.free(fresh_nodes[i]);
        if (results != nullptr) results[done + i] = r;
      }
      done += n;
    }
    if (attempts != nullptr) *attempts += total.attempts;
    return total;
  }

  // Removes `key`. Returns kMapOk or kMapAbsent.
  std::uint32_t erase(Sess& session, std::uint64_t key,
                      std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    const std::uint32_t b = bucket_of(key);
    Cell<Plat>& res = result_of(session);
    Cell<Plat>* res_ptr = &res;
    const StaticLockSet<1> locks{b};
    const Outcome o = B::submit(
        session, locks, [this, b, key, res_ptr](IdemCtx<Plat>& m) {
          Cell<Plat>* prev = heads_[b].get();
          std::uint32_t cur = m.load(*prev);
          while (cur != kMapNil) {
            Node& n = pool_.at(cur);
            if (n.key == key) {
              m.store(n.dead, 1);  // mark, then unlink (order documented)
              m.store(*prev, m.load(n.next));
              m.store(*res_ptr, kMapOk);
              return;
            }
            prev = &n.next;
            cur = m.load(n.next);
          }
          m.store(*res_ptr, kMapAbsent);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    const std::uint32_t r = res.peek();
    if (r == kMapOk) retired_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }

  // Linearizable read: walks the chain under the bucket lock. Returns
  // kMapOk with *out filled, or kMapAbsent.
  std::uint32_t get_locked(Sess& session, std::uint64_t key,
                           std::uint32_t* out,
                           std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    const std::uint32_t b = bucket_of(key);
    Cell<Plat>& res = result_of(session);
    Cell<Plat>& oval = out_val_of(session);
    Cell<Plat>* res_ptr = &res;
    Cell<Plat>* out_ptr = &oval;
    const StaticLockSet<1> locks{b};
    const Outcome o = B::submit(
        session, locks, [this, b, key, res_ptr, out_ptr](IdemCtx<Plat>& m) {
          std::uint32_t cur = m.load(*heads_[b]);
          while (cur != kMapNil) {
            Node& n = pool_.at(cur);
            if (n.key == key) {
              m.store(*out_ptr, m.load(n.val));
              m.store(*res_ptr, kMapOk);
              return;
            }
            cur = m.load(n.next);
          }
          m.store(*res_ptr, kMapAbsent);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    if (res.peek() == kMapOk) {
      *out = oval.peek();
      return kMapOk;
    }
    return kMapAbsent;
  }

  // Service-facing prepared ops (the open-loop bench / async_submit
  // path): fixed-key linearizable read and update-in-place over keys the
  // caller pre-populated. No node allocation and no per-process result
  // cell, so ONE client may hold arbitrarily many in flight (the async
  // executor's model — per-process cells would alias across concurrent
  // requests). Results land in a per-bucket sink cell: the serviced unit
  // of work is the locked chain walk, and the sink is written under the
  // same bucket lock, so it adds no cross-bucket contention.
  PreparedOp<Plat> prepared_get(std::uint64_t key) {
    const std::uint32_t b = bucket_of(key);
    Cell<Plat>* sink = sinks_[b].get();
    const StaticLockSet<1> locks{b};
    return PreparedOp<Plat>(
        locks, [this, b, key, sink](IdemCtx<Plat>& m) {
          std::uint32_t cur = m.load(*heads_[b]);
          while (cur != kMapNil) {
            Node& n = pool_.at(cur);
            if (n.key == key) {
              m.store(*sink, m.load(n.val));
              return;
            }
            cur = m.load(n.next);
          }
          m.store(*sink, kMapAbsent);
        });
  }

  PreparedOp<Plat> prepared_update(std::uint64_t key, std::uint32_t value) {
    const std::uint32_t b = bucket_of(key);
    Cell<Plat>* sink = sinks_[b].get();
    const StaticLockSet<1> locks{b};
    return PreparedOp<Plat>(
        locks, [this, b, key, value, sink](IdemCtx<Plat>& m) {
          std::uint32_t cur = m.load(*heads_[b]);
          while (cur != kMapNil) {
            Node& n = pool_.at(cur);
            if (n.key == key) {
              m.store(n.val, value);
              m.store(*sink, kMapOk);
              return;
            }
            cur = m.load(n.next);
          }
          m.store(*sink, kMapAbsent);
        });
  }

  // Weakly consistent unlocked probe (may race with unlinking).
  bool get(std::uint64_t key, std::uint32_t* out) const {
    std::uint32_t cur = heads_[bucket_of(key)]->load_direct();
    while (cur != kMapNil) {
      const Node& n = pool_.at(cur);
      if (n.key == key) {
        *out = n.val.load_direct();
        return true;
      }
      cur = n.next.load_direct();
    }
    return false;
  }

  // Atomically exchanges the values of k1 and k2 (both must exist).
  // Returns kMapOk or kMapAbsent. L = 2 when the keys hash to different
  // buckets — the experiment-grade multi-lock operation of this substrate.
  std::uint32_t swap(Sess& session, std::uint64_t k1, std::uint64_t k2,
                     std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    const std::uint32_t b1 = bucket_of(k1);
    const std::uint32_t b2 = bucket_of(k2);
    Cell<Plat>& res = result_of(session);
    const StaticLockSet<2> locks{b1, b2};  // dedups when b1 == b2
    Cell<Plat>* res_ptr = &res;
    const Outcome o = B::submit(
        session, locks,
        [this, b1, b2, k1, k2, res_ptr](IdemCtx<Plat>& m) {
          const std::uint32_t n1 = find_in_chain(m, b1, k1);
          const std::uint32_t n2 = find_in_chain(m, b2, k2);
          if (n1 == kMapNil || n2 == kMapNil || n1 == n2) {
            m.store(*res_ptr, kMapAbsent);
            return;
          }
          Cell<Plat>& v1 = pool_.at(n1).val;
          Cell<Plat>& v2 = pool_.at(n2).val;
          const std::uint32_t a = m.load(v1);
          const std::uint32_t bval = m.load(v2);
          m.store(v1, bval);
          m.store(v2, a);
          m.store(*res_ptr, kMapOk);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    return res.peek();
  }

  std::uint32_t nbuckets() const { return nbuckets_; }

  // Quiescent-only: total live entries, with chain-shape audit.
  std::size_t size() const {
    std::size_t total = 0;
    for (std::uint32_t b = 0; b < nbuckets_; ++b) {
      std::uint32_t len = 0;
      std::uint32_t cur = heads_[b]->peek();
      while (cur != kMapNil) {
        const Node& n = pool_.at(cur);
        WFL_CHECK_MSG(n.dead.peek() == 0, "dead node still linked");
        WFL_CHECK_MSG(bucket_of(n.key) == b, "node in the wrong bucket");
        ++len;
        WFL_CHECK_MSG(len <= kMaxChain, "chain exceeds kMaxChain");
        cur = n.next.peek();
      }
      total += len;
    }
    return total;
  }

 private:
  struct Node {
    std::uint64_t key = 0;  // immutable once published
    Cell<Plat> val;
    Cell<Plat> next;
    Cell<Plat> dead;
  };

  std::uint32_t bucket_of(std::uint64_t key) const {
    // SplitMix64 finalizer: full-avalanche, cheap, deterministic.
    std::uint64_t x = key + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::uint32_t>((x ^ (x >> 31)) % nbuckets_);
  }

  // In-thunk chain search; every hop is an agreed instrumented load.
  std::uint32_t find_in_chain(IdemCtx<Plat>& m, std::uint32_t b,
                              std::uint64_t key) {
    std::uint32_t cur = m.load(*heads_[b]);
    while (cur != kMapNil) {
      Node& n = pool_.at(cur);
      if (n.key == key) return cur;
      cur = m.load(n.next);
    }
    return kMapNil;
  }

  // Each process owns one result cell and one out-value cell; thunks
  // capture the owner's cells by pointer (helpers then write the *owner's*
  // cells, which is the point — the owner reads them after the attempt).
  Cell<Plat>& result_of(Sess& session) {
    return *results_[static_cast<std::size_t>(session.pid())];
  }
  Cell<Plat>& out_val_of(Sess& session) {
    return *out_vals_[static_cast<std::size_t>(session.pid())];
  }
  // Per-(process, batch-slot) result cell for put_batch: stable storage,
  // lazily allocated the first time a process batches.
  Cell<Plat>& batch_result_of(Sess& session, std::size_t slot) {
    auto& row = batch_results_[static_cast<std::size_t>(session.pid())];
    if (row.empty()) {
      row.reserve(kMaxBatchOps);
      for (std::size_t i = 0; i < kMaxBatchOps; ++i) {
        row.push_back(std::make_unique<Cell<Plat>>(0u));
      }
    }
    return *row[slot];
  }

  Space& space_;
  std::uint32_t nbuckets_;
  IndexPool<Node> pool_;
  std::vector<std::unique_ptr<Cell<Plat>>> heads_;
  std::vector<std::unique_ptr<Cell<Plat>>> sinks_;  // per-bucket, prepared ops
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
  std::vector<std::unique_ptr<Cell<Plat>>> out_vals_;
  std::vector<std::vector<std::unique_ptr<Cell<Plat>>>> batch_results_;
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace wfl
