// Application substrate: a sorted linked-list set with fine-grained
// per-node locks — the paper's motivating data-structure pattern (§1:
// "operations on linked lists ... that require taking a lock on a node and
// its neighbors for the purpose of making a local update").
//
// Structure: nodes live in an index pool; links are idempotent Cells
// holding 32-bit node indices. An operation optimistically traverses
// without locks, then tryLocks {pred, curr} and re-validates inside the
// critical section (hand-over-hand validation in the style of the lazy
// list). A failed validation or a failed tryLock attempt retries from the
// traversal.
//
// Progress: each *attempt* is wait-free (inherited from the locks); the
// operation as a whole is retry-until-success. Erased nodes are marked
// (next = kTombstone) and not recycled until quiescent_reset() — index
// recycling under live traversals would need hazard-era validation that
// this substrate deliberately omits (documented trade-off).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

inline constexpr std::uint32_t kListNil = 0xFFFFFFFFu;
inline constexpr std::uint32_t kListTomb = 0xFFFFFFFEu;

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedList {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedList requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Node index i is protected by lock id i; `space` must have at least
  // `capacity` locks. Keys must be < kListTomb.
  LockedList(Space& space, std::uint32_t capacity)
      : space_(space), pool_(capacity) {
    WFL_CHECK(capacity >= 2);
    WFL_CHECK(static_cast<int>(capacity) <= space.num_locks());
    head_ = pool_.alloc();
    Node& h = pool_.at(head_);
    h.key = 0;  // head sentinel sorts before every real key (keys are > 0)
    h.next.init(kListNil);
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
  }

  // Inserts `key` (must be > 0). Returns false if already present.
  // `attempts` (optional) accumulates the number of tryLock attempts spent.
  bool insert(Sess& session, std::uint32_t key,
              std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kListTomb);
    std::uint32_t fresh = kListNil;
    for (;;) {
      auto [pred, curr] = locate(key);
      if (curr != kListNil && pool_.at(curr).key == key) {
        if (fresh != kListNil) pool_.free(fresh);
        return false;
      }
      if (fresh == kListNil) {
        fresh = pool_.alloc();
        pool_.at(fresh).key = key;
      }
      pool_.at(fresh).next.init(curr);  // private until linked

      Cell<Plat>& presult = *results_[static_cast<std::size_t>(session.pid())];
      Cell<Plat>& pred_next = pool_.at(pred).next;
      StaticLockSet<2> locks{pred};
      if (curr != kListNil) locks.insert(curr);
      const std::uint32_t fresh_idx = fresh;
      const std::uint32_t expect_curr = curr;
      // One-shot per traversal: a lost attempt (or failed validation) must
      // re-locate before re-arming the thunk.
      const Outcome o = B::submit(
          session, locks,
          [&pred_next, &presult, fresh_idx, expect_curr](IdemCtx<Plat>& m) {
            if (m.load(pred_next) == expect_curr) {
              m.store(pred_next, fresh_idx);
              m.store(presult, 1);
            } else {
              m.store(presult, 2);
            }
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && presult.peek() == 1) return true;
      // Lost the attempt or failed validation: re-traverse and retry.
    }
  }

  // Erases `key`. Returns false if absent.
  bool erase(Sess& session, std::uint32_t key,
             std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kListTomb);
    for (;;) {
      auto [pred, curr] = locate(key);
      if (curr == kListNil || pool_.at(curr).key != key) return false;

      Cell<Plat>& presult = *results_[static_cast<std::size_t>(session.pid())];
      Cell<Plat>& pred_next = pool_.at(pred).next;
      Cell<Plat>& curr_next = pool_.at(curr).next;
      const std::uint32_t expect_curr = curr;
      const StaticLockSet<2> locks{pred, curr};
      const Outcome o = B::submit(
          session, locks,
          [&pred_next, &curr_next, &presult, expect_curr](IdemCtx<Plat>& m) {
            if (m.load(pred_next) == expect_curr) {
              const std::uint32_t succ = m.load(curr_next);
              m.store(pred_next, succ);
              m.store(curr_next, kListTomb);  // mark: traversals restart
              m.store(presult, 1);
            } else {
              m.store(presult, 2);
            }
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && presult.peek() == 1) {
        // The unlinked node is exactly `curr` (the thunk validated it);
        // park it for quiescent_recycle. Raw mutex: reclamation is outside
        // the step model (DESIGN.md substitution #2).
        std::lock_guard<std::mutex> g(retired_mu_);
        retired_.push_back(curr);
        return true;
      }
    }
  }

  // Quiescent-only: returns every node erased since the last call to the
  // pool, making the list usable indefinitely on a bounded pool. The
  // caller must guarantee quiescence — no operation in flight and no
  // helper that could still replay a thunk referencing these nodes (e.g.
  // a single-threaded phase, or after joining all workers). Reusing an
  // index while an optimistic traversal is live would be an ABA hazard,
  // which is exactly why this is not done inside erase() (documented
  // trade-off in the header comment).
  std::size_t quiescent_recycle() {
    std::lock_guard<std::mutex> g(retired_mu_);
    for (const std::uint32_t idx : retired_) pool_.free(idx);
    const std::size_t n = retired_.size();
    retired_.clear();
    return n;
  }
  bool contains(std::uint32_t key) {
    auto [pred, curr] = locate(key);
    (void)pred;
    return curr != kListNil && pool_.at(curr).key == key;
  }

  // Quiescent-only: walks the list and returns the keys in order. Also
  // checks sortedness — the structural invariant of the set.
  std::vector<std::uint32_t> keys() const {
    std::vector<std::uint32_t> out;
    std::uint32_t curr = pool_.at(head_).next.peek();
    std::uint32_t prev_key = 0;
    while (curr != kListNil) {
      const Node& n = pool_.at(curr);
      WFL_CHECK_MSG(n.key > prev_key, "list order violated");
      prev_key = n.key;
      out.push_back(n.key);
      curr = n.next.peek();
      WFL_CHECK_MSG(curr != kListTomb, "tombstone reachable from the list");
    }
    return out;
  }

 private:
  struct Node {
    std::uint32_t key = 0;  // immutable once published
    Cell<Plat> next;
  };

  // Optimistic traversal: returns (pred, curr) with pred.key < key <=
  // curr.key (curr may be nil). Restarts when it runs into a node erased
  // mid-walk.
  std::pair<std::uint32_t, std::uint32_t> locate(std::uint32_t key) {
    for (;;) {
      std::uint32_t pred = head_;
      std::uint32_t curr = pool_.at(head_).next.load_direct();
      bool restart = false;
      while (curr != kListNil) {
        if (curr == kListTomb) {
          restart = true;  // pred was erased under us
          break;
        }
        const Node& n = pool_.at(curr);
        if (n.key >= key) break;
        pred = curr;
        curr = n.next.load_direct();
      }
      if (!restart) return {pred, curr};
    }
  }

  Space& space_;
  IndexPool<Node> pool_;
  std::uint32_t head_ = 0;
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
  std::mutex retired_mu_;
  std::vector<std::uint32_t> retired_;
};

}  // namespace wfl
