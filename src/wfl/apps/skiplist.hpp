// Application substrate: a sorted skip-list set with fine-grained per-node
// locks — the multi-lock generalization of the linked list (the paper cites
// Pugh's concurrent skip lists [41] among the fine-grained-locking data
// structures its locks target).
//
// An update must atomically adjust the predecessor pointer at every level
// of a tower, so its tryLock set is the *distinct predecessors* across the
// tower's levels (plus the victim, for erase) — a natural workload where
// L > 2 and the lock sets of concurrent operations overlap partially, not
// totally. That makes the skip list the stress case for the multi active
// set machinery that pairwise structures (lists, bank transfers) never
// exercise.
//
// Concurrency recipe (lazy-list style, per level):
//   1. optimistic traversal collects preds[lvl]/succs[lvl] without locks;
//   2. tryLocks on the deduplicated preds (+ victim);
//   3. inside the critical section, re-validate pred.next[lvl] == succ[lvl]
//      at every level, then perform all link writes, or none.
// A failed validation or lost attempt retries from the traversal. Erased
// nodes tombstone every level; traversals restart on a tombstone. Node
// indices are not recycled while operations are live (same documented
// trade-off as LockedList).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {

inline constexpr std::uint32_t kSkipNil = 0xFFFFFFFFu;
inline constexpr std::uint32_t kSkipTomb = 0xFFFFFFFEu;
inline constexpr std::uint32_t kSkipMaxLevel = 3;

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedSkipList {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedSkipList requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Node index i is protected by lock id i; `space` must have at least
  // `capacity` locks and max_locks >= kSkipMaxLevel + 1. Keys must be in
  // (0, kSkipTomb).
  LockedSkipList(Space& space, std::uint32_t capacity)
      : space_(space), pool_(capacity) {
    WFL_CHECK(capacity >= 2);
    WFL_CHECK(static_cast<int>(capacity) <= space.num_locks());
    WFL_CHECK(space.config().max_locks >= kSkipMaxLevel + 1);
    head_ = pool_.alloc();
    Node& h = pool_.at(head_);
    h.key = 0;
    h.levels = kSkipMaxLevel;
    for (std::uint32_t l = 0; l < kSkipMaxLevel; ++l) h.next[l].init(kSkipNil);
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
  }

  // Geometric tower height in [1, kSkipMaxLevel], p = 1/2.
  static std::uint32_t draw_level(Xoshiro256& rng) {
    std::uint32_t lvl = 1;
    while (lvl < kSkipMaxLevel && (rng.next() & 1u) != 0) ++lvl;
    return lvl;
  }

  // Inserts `key` with the given tower height. Returns false if present.
  bool insert(Sess& session, std::uint32_t key, std::uint32_t level,
              std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kSkipTomb);
    WFL_CHECK(level >= 1 && level <= kSkipMaxLevel);
    std::uint32_t fresh = kSkipNil;
    for (;;) {
      Locate loc = locate(key);
      if (loc.found != kSkipNil) {
        if (fresh != kSkipNil) pool_.free(fresh);
        return false;
      }
      if (fresh == kSkipNil) {
        fresh = pool_.alloc();
        Node& n = pool_.at(fresh);
        n.key = key;
        n.levels = level;
      }
      // Private until linked: point the new tower at the observed succs.
      for (std::uint32_t l = 0; l < level; ++l) {
        pool_.at(fresh).next[l].init(loc.succs[l]);
      }

      // Thunk state, captured by value (stragglers may replay after this
      // attempt returns — see DESIGN.md §3.6 on descriptor lifetimes).
      struct LinkPlan {
        std::array<Cell<Plat>*, kSkipMaxLevel> pred_next;
        std::array<std::uint32_t, kSkipMaxLevel> expect;
        std::uint32_t fresh;
        std::uint32_t levels;
        Cell<Plat>* result;
      } plan{};
      for (std::uint32_t l = 0; l < level; ++l) {
        plan.pred_next[l] = &pool_.at(loc.preds[l]).next[l];
        plan.expect[l] = loc.succs[l];
      }
      plan.fresh = fresh;
      plan.levels = level;
      plan.result = results_[static_cast<std::size_t>(session.pid())].get();

      StaticLockSet<kSkipMaxLevel> locks;
      for (std::uint32_t l = 0; l < level; ++l) locks.insert(loc.preds[l]);
      const Outcome o = B::submit(
          session, locks, [plan](IdemCtx<Plat>& m) {
            for (std::uint32_t l = 0; l < plan.levels; ++l) {
              if (m.load(*plan.pred_next[l]) != plan.expect[l]) {
                m.store(*plan.result, 2);
                return;
              }
            }
            // Bottom-up: a concurrent traversal that sees a higher level
            // early still finds the node at level 0.
            for (std::uint32_t l = 0; l < plan.levels; ++l) {
              m.store(*plan.pred_next[l], plan.fresh);
            }
            m.store(*plan.result, 1);
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && plan.result->peek() == 1) return true;
    }
  }

  // Erases `key`. Returns false if absent.
  bool erase(Sess& session, std::uint32_t key,
             std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kSkipTomb);
    for (;;) {
      Locate loc = locate(key);
      if (loc.found == kSkipNil) return false;
      Node& victim = pool_.at(loc.found);

      struct UnlinkPlan {
        std::array<Cell<Plat>*, kSkipMaxLevel> pred_next;
        Node* victim;
        std::uint32_t victim_idx;
        std::uint32_t levels;
        Cell<Plat>* result;
      } plan{};
      plan.victim = &victim;
      plan.victim_idx = loc.found;
      plan.levels = victim.levels;
      plan.result = results_[static_cast<std::size_t>(session.pid())].get();
      for (std::uint32_t l = 0; l < victim.levels; ++l) {
        plan.pred_next[l] = &pool_.at(loc.preds[l]).next[l];
      }

      StaticLockSet<kSkipMaxLevel + 1> locks;
      for (std::uint32_t l = 0; l < victim.levels; ++l) {
        locks.insert(loc.preds[l]);
      }
      locks.insert(loc.found);  // victim's lock serializes with its erasure
      const Outcome o = B::submit(
          session, locks, [plan](IdemCtx<Plat>& m) {
            for (std::uint32_t l = 0; l < plan.levels; ++l) {
              if (m.load(*plan.pred_next[l]) != plan.victim_idx) {
                m.store(*plan.result, 2);
                return;
              }
            }
            // Top-down unlink, then tombstone the tower so optimistic
            // traversals caught on the victim restart.
            for (std::uint32_t l = plan.levels; l-- > 0;) {
              const std::uint32_t succ = m.load(plan.victim->next[l]);
              m.store(*plan.pred_next[l], succ);
            }
            for (std::uint32_t l = 0; l < plan.levels; ++l) {
              m.store(plan.victim->next[l], kSkipTomb);
            }
            m.store(*plan.result, 1);
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && plan.result->peek() == 1) return true;
    }
  }

  // Lock-free membership probe (optimistic).
  bool contains(std::uint32_t key) { return locate(key).found != kSkipNil; }

  // Quiescent-only: keys in order, validating sortedness and that every
  // higher level is a sublist of level 0.
  std::vector<std::uint32_t> keys() const {
    std::vector<std::uint32_t> out;
    std::uint32_t curr = pool_.at(head_).next[0].peek();
    std::uint32_t prev = 0;
    while (curr != kSkipNil) {
      const Node& n = pool_.at(curr);
      WFL_CHECK_MSG(n.key > prev, "skiplist order violated");
      prev = n.key;
      out.push_back(n.key);
      curr = n.next[0].peek();
      WFL_CHECK_MSG(curr != kSkipTomb, "tombstone reachable at level 0");
    }
    for (std::uint32_t l = 1; l < kSkipMaxLevel; ++l) {
      std::size_t pos = 0;
      std::uint32_t c = pool_.at(head_).next[l].peek();
      while (c != kSkipNil) {
        const std::uint32_t k = pool_.at(c).key;
        while (pos < out.size() && out[pos] != k) ++pos;
        WFL_CHECK_MSG(pos < out.size(),
                      "level is not a sublist of the bottom level");
        c = pool_.at(c).next[l].peek();
      }
    }
    return out;
  }

 private:
  struct Node {
    std::uint32_t key = 0;     // immutable once published
    std::uint32_t levels = 1;  // immutable once published
    Cell<Plat> next[kSkipMaxLevel];
  };

  struct Locate {
    std::array<std::uint32_t, kSkipMaxLevel> preds{};
    std::array<std::uint32_t, kSkipMaxLevel> succs{};
    std::uint32_t found = kSkipNil;  // node with key, if any
  };

  // Optimistic multi-level traversal; restarts on tombstones.
  Locate locate(std::uint32_t key) {
    for (;;) {
      Locate loc;
      bool restart = false;
      std::uint32_t pred = head_;
      for (std::uint32_t l = kSkipMaxLevel; l-- > 0 && !restart;) {
        std::uint32_t curr = pool_.at(pred).next[l].load_direct();
        for (;;) {
          if (curr == kSkipTomb) {
            restart = true;
            break;
          }
          if (curr == kSkipNil || pool_.at(curr).key >= key) break;
          pred = curr;
          curr = pool_.at(curr).next[l].load_direct();
        }
        loc.preds[l] = pred;
        loc.succs[l] = curr;
      }
      if (restart) continue;
      const std::uint32_t c0 = loc.succs[0];
      if (c0 != kSkipNil && pool_.at(c0).key == key) loc.found = c0;
      return loc;
    }
  }


  Space& space_;
  IndexPool<Node> pool_;
  std::uint32_t head_ = 0;
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
};

}  // namespace wfl
