// Application substrate: a bank of accounts with atomic transfers.
//
// The canonical multi-lock workload: a transfer takes the locks of both
// accounts (L = 2) and moves money inside the critical section. The global
// invariant — the sum of balances never changes — catches every mutual
// exclusion or idempotence failure as a lost/duplicated update.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

// Backend-generic: `Bank<WflBackend<Plat>>` and `Bank<TurekBackend<Plat>>`
// are the same substrate over different lock disciplines; a bare platform
// (`Bank<Plat>`) is shorthand for the wait-free backend.
template <typename BackendT>
class Bank {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "Bank requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Account i is protected by lock id `i` of `space` (the space must have at
  // least n_accounts locks).
  Bank(Space& space, std::uint32_t n_accounts, std::uint32_t initial_balance)
      : space_(space), initial_(initial_balance) {
    WFL_CHECK(n_accounts >= 2);
    WFL_CHECK(static_cast<int>(n_accounts) <= space.num_locks());
    for (std::uint32_t i = 0; i < n_accounts; ++i) {
      accounts_.push_back(std::make_unique<Cell<Plat>>(initial_balance));
    }
    // Per-process result scratch. Thunks may be replayed by helpers *after*
    // the owning attempt returned, so their output cells must be in stable
    // storage — never on the caller's stack. Reuse across a process's
    // attempts is safe: a won attempt's first thunk run completes before
    // try_locks returns, so any later replay's stores are exact-expected
    // CASes against long-gone words and fail without effect.
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(accounts_.size());
  }

  // One tryLock attempt at transferring `amount` from `from` to `to`.
  // Returns the attempt's outcome; *insufficient funds* still counts as a
  // successful attempt (the critical section ran and decided not to move
  // money — recorded in `denied` when provided).
  bool try_transfer(Sess& session, std::uint32_t from, std::uint32_t to,
                    std::uint32_t amount, bool* denied = nullptr) {
    return transfer(session, from, to, amount, Policy::one_shot(), denied)
        .won;
  }

  // The general form: one transfer submission under an arbitrary executor
  // Policy (Policy::retry() for operations that must land), with the
  // unified Outcome accounting.
  Outcome transfer(Sess& session, std::uint32_t from, std::uint32_t to,
                   std::uint32_t amount, Policy policy,
                   bool* denied = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(from < accounts_.size() && to < accounts_.size() && from != to);
    Cell<Plat>& src = *accounts_[from];
    Cell<Plat>& dst = *accounts_[to];
    Cell<Plat>& result = *results_[static_cast<std::size_t>(session.pid())];
    const StaticLockSet<2> locks{from, to};
    const Outcome o = B::submit(
        session, locks,
        [&src, &dst, amount, &result](IdemCtx<Plat>& m) {
          const std::uint32_t s = m.load(src);
          if (s >= amount) {
            m.store(src, s - amount);
            m.store(dst, m.load(dst) + amount);
            m.store(result, 1);
          } else {
            m.store(result, 2);
          }
        },
        policy);
    if (denied != nullptr) *denied = o.won && result.peek() == 2;
    return o;
  }

  // One batch element for transfer_batch.
  struct Transfer {
    std::uint32_t from;
    std::uint32_t to;
    std::uint32_t amount;
  };

  // Batch entry point: submits every transfer in order through the
  // backend's (possibly amortized) batch path. Insufficient funds is a
  // silent no-op here — per-transfer denial reporting needs a result cell
  // per op, which is what the single-op transfer() provides. kMaxBatchOps
  // bounds one internal chunk so the stack-built PreparedOps stay small;
  // larger spans are chunked transparently.
  static constexpr std::size_t kMaxBatchOps = 32;

  BatchOutcome transfer_batch(Sess& session, std::span<const Transfer> xs,
                              Policy policy = Policy::one_shot(),
                              Outcome* per_op = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    using Op = PreparedOp<Plat>;
    BatchOutcome total;
    std::size_t done = 0;
    while (done < xs.size()) {
      const std::size_t n = std::min(kMaxBatchOps, xs.size() - done);
      // Chunk-local PreparedOps. Safe despite the stack storage: each op's
      // closure captures only the two account cells and the amount, all of
      // which live in the Bank, and the ops themselves are copied into
      // descriptors at arm time.
      alignas(Op) unsigned char raw[sizeof(Op) * kMaxBatchOps];
      Op* ops = reinterpret_cast<Op*>(raw);
      for (std::size_t i = 0; i < n; ++i) {
        const Transfer& t = xs[done + i];
        WFL_CHECK(t.from < accounts_.size() && t.to < accounts_.size() &&
                  t.from != t.to);
        Cell<Plat>* src = accounts_[t.from].get();
        Cell<Plat>* dst = accounts_[t.to].get();
        const std::uint32_t amount = t.amount;
        const StaticLockSet<2> locks{t.from, t.to};
        ::new (static_cast<void*>(&ops[i]))
            Op(locks, [src, dst, amount](IdemCtx<Plat>& m) {
              const std::uint32_t s = m.load(*src);
              if (s >= amount) {
                m.store(*src, s - amount);
                m.store(*dst, m.load(*dst) + amount);
              }
            });
      }
      total += backend_submit_batch<B>(
          session, std::span<const Op>(ops, n), policy,
          per_op != nullptr ? per_op + done : nullptr);
      done += n;
    }
    return total;
  }

  // Quiescent-only audit.
  std::uint64_t total_balance() const {
    std::uint64_t sum = 0;
    for (const auto& a : accounts_) sum += a->peek();
    return sum;
  }

  std::uint64_t expected_total() const {
    return static_cast<std::uint64_t>(initial_) * accounts_.size();
  }

  std::uint32_t balance(std::uint32_t i) const { return accounts_[i]->peek(); }

 private:
  Space& space_;
  std::uint32_t initial_;
  std::vector<std::unique_ptr<Cell<Plat>>> accounts_;
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
};

}  // namespace wfl
