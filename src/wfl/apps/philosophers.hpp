// Application substrate: the dining philosophers ring (the paper's running
// example), parameterized over the locking strategy so the same harness
// drives wflock, blocking 2PL, and Lehmann–Rabin in experiments.
//
// n philosophers, n forks; philosopher p needs forks {p, (p+1) % n}. Each
// hungry episode retries attempts until the philosopher eats, then thinks
// for a workload-chosen number of own steps. The harness records attempts,
// meals, and own-steps per meal — the quantities behind the paper's O(1)
// expected-steps claim for this topology (κ = L = 2).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "wfl/util/assert.hpp"
#include "wfl/util/rng.hpp"
#include "wfl/util/stats.hpp"

namespace wfl {

struct PhilosopherReport {
  std::uint64_t meals = 0;
  std::uint64_t attempts = 0;
  RunningStat steps_per_meal;  // own steps from hungry to fed
};

// TryEat: bool(int pid) — one bounded attempt; true means the philosopher
// ate. Blocking strategies simply always return true (one attempt = one
// meal) and burn steps inside.
template <typename Plat, typename TryEat>
void run_philosopher_episodes(int pid, int meals, std::uint64_t think_max,
                              std::uint64_t rng_seed, TryEat&& try_eat,
                              PhilosopherReport& report) {
  Xoshiro256 rng(rng_seed);
  for (int m = 0; m < meals; ++m) {
    const std::uint64_t hungry_at = Plat::steps();
    for (;;) {
      ++report.attempts;
      if (try_eat(pid)) break;
    }
    ++report.meals;
    report.steps_per_meal.add(
        static_cast<double>(Plat::steps() - hungry_at));
    const std::uint64_t think = think_max == 0 ? 0 : rng.next_below(think_max);
    for (std::uint64_t s = 0; s < think; ++s) Plat::step();
  }
}

// Fork lock ids for philosopher p at an n-seat table.
inline std::pair<std::uint32_t, std::uint32_t> forks_of(int p, int n) {
  WFL_CHECK(n >= 2 && p >= 0 && p < n);
  return {static_cast<std::uint32_t>(p),
          static_cast<std::uint32_t>((p + 1) % n)};
}

}  // namespace wfl
