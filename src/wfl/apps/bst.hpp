// Application substrate: an external (leaf-oriented) binary search tree
// with fine-grained per-node locks — the paper's "trees" use case (§1:
// local updates that "require taking a lock on a node and its neighbors").
//
// External trees keep all keys in leaves; internal nodes are routers. This
// makes the locked neighbourhoods small and static, which is exactly the
// regime the paper's tryLocks target:
//   * insert(k): replace leaf `l` (child of `p`) by a fresh router whose
//     children are `l` and a new leaf(k). Locks {p, l} — L = 2.
//   * erase(k): unlink leaf `l` and its parent router `p`, promoting `l`'s
//     sibling into the grandparent `g`. Locks {g, p, l} — L = 3.
//   * contains(k): optimistic, lock-free read-only traversal.
//
// Correctness pattern (same as LockedList): traverse optimistically, then
// validate *inside* the critical section that the locked nodes are still
// live and still wired the way the traversal saw them; publish a result
// code through a per-process result cell. A failed validation or a lost
// tryLock attempt retries from the traversal. Unreachable nodes are marked
// dead inside the erase thunk, so a racing insert can never publish into a
// detached subtree (the classic lost-update hazard of locked externals).
//
// Progress: each attempt is wait-free (inherited from the locks); the whole
// operation is retry-until-success. Removed nodes are not recycled until
// quiescent_reset() — index recycling under live optimistic traversals
// would require era validation that this substrate deliberately omits
// (documented trade-off, same as LockedList).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

inline constexpr std::uint32_t kBstNil = 0xFFFFFFFFu;
// All real keys must be < kBstInf; the two sentinel leaves hold kBstInf.
inline constexpr std::uint32_t kBstInf = 0xFFFFFFF0u;

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedBst {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedBst requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Node index i is protected by lock id i; `space` must provide at least
  // `capacity` locks. Capacity counts *all* nodes: a set of n keys needs
  // 2n + 3 nodes (n leaves, n-1 routers, 3 sentinels), plus headroom for
  // nodes retired between quiescent resets.
  LockedBst(Space& space, std::uint32_t capacity)
      : space_(space), pool_(capacity) {
    WFL_CHECK(capacity >= 8);
    WFL_CHECK(static_cast<int>(capacity) <= space.num_locks());
    // Sentinel shape (Ellen et al. style): root router with two infinite
    // leaves. Every real key routes left of the root.
    root_ = alloc_node(kBstInf, /*leaf=*/false);
    const std::uint32_t l1 = alloc_node(kBstInf, /*leaf=*/true);
    const std::uint32_t l2 = alloc_node(kBstInf, /*leaf=*/true);
    pool_.at(root_).left.init(l1);
    pool_.at(root_).right.init(l2);
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
  }

  // Inserts `key` (must be > 0 and < kBstInf). Returns false if present.
  // `attempts`, if given, accumulates tryLock attempts spent.
  bool insert(Sess& session, std::uint32_t key,
              std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kBstInf);
    std::uint32_t router = kBstNil;  // reused across failed attempts
    std::uint32_t leaf = kBstNil;
    for (;;) {
      const SearchPath sp = search(key);
      if (pool_.at(sp.leaf).key == key) {
        if (router != kBstNil) {
          pool_.free(router);
          pool_.free(leaf);
        }
        return false;
      }
      if (router == kBstNil) {
        leaf = alloc_node(key, /*leaf=*/true);
        router = alloc_node(0, /*leaf=*/false);
      }
      // Wire the private replacement subtree: router carries the larger key
      // and routes strictly-smaller keys left (external-tree convention:
      // left subtree keys < router key <= right subtree keys).
      const std::uint32_t old_leaf_key = pool_.at(sp.leaf).key;
      Node& r = pool_.at(router);
      if (key < old_leaf_key) {
        r.key = old_leaf_key;
        r.left.init(leaf);
        r.right.init(sp.leaf);
      } else {
        r.key = key;
        r.left.init(sp.leaf);
        r.right.init(leaf);
      }

      Cell<Plat>& res = result_of(session);
      Node& p = pool_.at(sp.parent);
      Cell<Plat>& p_child = sp.leaf_is_left ? p.left : p.right;
      Cell<Plat>& p_dead = p.dead;
      Cell<Plat>& l_dead = pool_.at(sp.leaf).dead;
      const std::uint32_t expect_leaf = sp.leaf;
      const std::uint32_t router_idx = router;
      const StaticLockSet<2> locks{sp.parent, sp.leaf};
      const Outcome o = B::submit(
          session, locks,
          [&p_child, &p_dead, &l_dead, &res, expect_leaf,
           router_idx](IdemCtx<Plat>& m) {
            if (m.load(p_dead) == 0 && m.load(l_dead) == 0 &&
                m.load(p_child) == expect_leaf) {
              m.store(p_child, router_idx);
              m.store(res, kOk);
            } else {
              m.store(res, kStale);
            }
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && res.peek() == kOk) return true;
      // Lost the attempt or the neighbourhood moved: retry from the top.
    }
  }

  // Erases `key`. Returns false if absent.
  bool erase(Sess& session, std::uint32_t key,
             std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(key > 0 && key < kBstInf);
    for (;;) {
      const SearchPath sp = search(key);
      if (pool_.at(sp.leaf).key != key) return false;
      WFL_CHECK_MSG(sp.gparent != kBstNil,
                    "real leaf must sit at depth >= 2 under the sentinels");

      Cell<Plat>& res = result_of(session);
      Node& g = pool_.at(sp.gparent);
      Node& p = pool_.at(sp.parent);
      Cell<Plat>& g_child = sp.parent_is_left ? g.left : g.right;
      Cell<Plat>& p_child = sp.leaf_is_left ? p.left : p.right;
      Cell<Plat>& sibling = sp.leaf_is_left ? p.right : p.left;
      Cell<Plat>& g_dead = g.dead;
      Cell<Plat>& p_dead = p.dead;
      Cell<Plat>& l_dead = pool_.at(sp.leaf).dead;
      const std::uint32_t expect_parent = sp.parent;
      const std::uint32_t expect_leaf = sp.leaf;
      const StaticLockSet<3> locks{sp.gparent, sp.parent, sp.leaf};
      const Outcome o = B::submit(
          session, locks,
          [&g_child, &p_child, &sibling, &g_dead, &p_dead, &l_dead, &res,
           expect_parent, expect_leaf](IdemCtx<Plat>& m) {
            // p_child must still be the leaf: a racing insert interposes a
            // router between p and l, and promoting the sibling would then
            // silently drop the freshly inserted key.
            if (m.load(g_dead) == 0 && m.load(p_dead) == 0 &&
                m.load(l_dead) == 0 && m.load(g_child) == expect_parent &&
                m.load(p_child) == expect_leaf) {
              const std::uint32_t sib = m.load(sibling);
              m.store(p_dead, 1);  // mark before unlink: traversing inserts
              m.store(l_dead, 1);  // must see death even if they raced past
              m.store(g_child, sib);
              m.store(res, kOk);
            } else {
              m.store(res, kStale);
            }
          });
      if (attempts != nullptr) *attempts += o.attempts;
      if (o.won && res.peek() == kOk) {
        retired_.fetch_add(2, std::memory_order_relaxed);
        return true;
      }
    }
  }

  // Optimistic membership probe. Weakly consistent: concurrent updates may
  // or may not be observed, like the lazy list's unlocked contains.
  bool contains(std::uint32_t key) {
    const SearchPath sp = search(key);
    return pool_.at(sp.leaf).key == key;
  }

  // Quiescent-only: in-order keys of all live leaves (sentinels excluded).
  // Checks the routing invariant on the way down.
  std::vector<std::uint32_t> keys() const {
    std::vector<std::uint32_t> out;
    collect(pool_.at(root_).left.peek(), 0, kBstInf, out);
    return out;
  }

  // Quiescent-only structural audit: every reachable node is alive, every
  // router has exactly two children, and the reachable subgraph is a tree
  // (visiting more nodes than the pool holds means a cycle). Depth is NOT
  // bounded by a constant: sorted insertions legitimately build a spine as
  // deep as the key count (external trees do not self-balance).
  void check_structure() const {
    std::uint64_t visited = 0;
    audit(pool_.at(root_).left.peek(), &visited);
  }

  std::uint64_t retired_nodes() const {
    return retired_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kOk = 1;
  static constexpr std::uint32_t kStale = 2;

  struct Node {
    std::uint32_t key = 0;  // immutable once published
    bool leaf = false;      // immutable once published
    Cell<Plat> left;        // router only
    Cell<Plat> right;       // router only
    Cell<Plat> dead;        // 0 = live; set inside the erase thunk
  };

  struct SearchPath {
    std::uint32_t gparent = kBstNil;
    std::uint32_t parent = kBstNil;
    std::uint32_t leaf = kBstNil;
    bool parent_is_left = false;  // parent is g's left child
    bool leaf_is_left = false;    // leaf is p's left child
  };

  std::uint32_t alloc_node(std::uint32_t key, bool leaf) {
    const std::uint32_t idx = pool_.alloc();
    WFL_CHECK(static_cast<int>(idx) < space_.num_locks());
    Node& n = pool_.at(idx);
    n.key = key;
    n.leaf = leaf;
    n.left.init(kBstNil);
    n.right.init(kBstNil);
    n.dead.init(0);
    return idx;
  }

  Cell<Plat>& result_of(Sess& session) {
    return *results_[static_cast<std::size_t>(session.pid())];
  }

  // Optimistic root-to-leaf walk; no locks, no validation (the thunks
  // re-validate). Routing: key < node.key goes left.
  SearchPath search(std::uint32_t key) const {
    SearchPath sp;
    sp.parent = root_;
    sp.leaf_is_left = true;
    std::uint32_t cur = pool_.at(root_).left.load_direct();
    while (!pool_.at(cur).leaf) {
      sp.gparent = sp.parent;
      sp.parent_is_left = sp.leaf_is_left;
      sp.parent = cur;
      const Node& n = pool_.at(cur);
      sp.leaf_is_left = key < n.key;
      cur = sp.leaf_is_left ? n.left.load_direct() : n.right.load_direct();
    }
    sp.leaf = cur;
    return sp;
  }

  void collect(std::uint32_t idx, std::uint32_t lo, std::uint32_t hi,
               std::vector<std::uint32_t>& out) const {
    const Node& n = pool_.at(idx);
    WFL_CHECK_MSG(n.dead.peek() == 0, "dead node reachable from the root");
    if (n.leaf) {
      if (n.key != kBstInf) {
        WFL_CHECK_MSG(n.key >= lo && n.key < hi, "BST routing violated");
        out.push_back(n.key);
      }
      return;
    }
    collect(n.left.peek(), lo, n.key, out);
    collect(n.right.peek(), n.key, hi, out);
  }

  void audit(std::uint32_t idx, std::uint64_t* visited) const {
    WFL_CHECK_MSG(++*visited <= pool_.capacity(),
                  "more reachable nodes than the pool holds: cycle");
    const Node& n = pool_.at(idx);
    WFL_CHECK(n.dead.peek() == 0);
    if (n.leaf) return;
    WFL_CHECK(n.left.peek() != kBstNil && n.right.peek() != kBstNil);
    audit(n.left.peek(), visited);
    audit(n.right.peek(), visited);
  }

  Space& space_;
  IndexPool<Node> pool_;
  std::uint32_t root_ = 0;
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace wfl
