// Application substrate: vertex-local updates on a bounded-degree graph —
// the GraphLab pattern the paper's introduction cites (§1: "graph
// processing systems such as GraphLab" take "a lock on a node and its
// neighbors for the purpose of making a local update").
//
// The topology is immutable after construction; each vertex carries one
// idempotent data cell and is protected by lock id = vertex id. An
// apply(v) operation tryLocks {v} ∪ N(v) — L = deg(v)+1 — and runs a
// user functor over the neighbourhood's cells. Because the topology is
// static, no validation is needed inside the thunk: the lock set *is* the
// neighbourhood, exactly the paper's model where lock sets are specified
// in advance.
//
// Degree is capped at kMaxLocksPerAttempt-1 so every neighbourhood fits in
// one attempt; the constructors for standard topologies (ring, torus,
// random d-regular) respect the cap by construction.
//
// Two ready-made local updates are provided because the experiments use
// them: greedy vertex colouring (pick the smallest colour unused by any
// neighbour) and neighbourhood averaging (the PageRank/consensus shape).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/util/assert.hpp"
#include "wfl/util/rng.hpp"

namespace wfl {

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedGraph {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedGraph requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // Builds the graph from an adjacency list. Vertex v is protected by lock
  // id v; `space` must have >= n locks, max_locks >= max_degree+1 and
  // max_thunk_steps >= thunk_step_budget(max_degree).
  LockedGraph(Space& space, std::vector<std::vector<std::uint32_t>> adj)
      : space_(space), adj_(std::move(adj)) {
    const std::uint32_t n = static_cast<std::uint32_t>(adj_.size());
    WFL_CHECK(n >= 1);
    WFL_CHECK(static_cast<int>(n) <= space.num_locks());
    std::uint32_t max_deg = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      auto& nb = adj_[v];
      WFL_CHECK_MSG(nb.size() + 1 <= kMaxLocksPerAttempt,
                    "vertex degree exceeds the per-attempt lock budget");
      max_deg = std::max(max_deg, static_cast<std::uint32_t>(nb.size()));
      for (std::uint32_t u : nb) {
        WFL_CHECK(u < n && u != v);
      }
    }
    WFL_CHECK_MSG(space.config().max_locks >= max_deg + 1,
                  "LockConfig::max_locks must cover max_degree + 1");
    WFL_CHECK_MSG(space.config().max_thunk_steps >=
                      thunk_step_budget(max_deg),
                  "LockConfig::max_thunk_steps must cover the apply thunk");
    data_.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      data_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
    // Immutable neighbour-pointer tables: View construction inside thunks
    // (where helpers run concurrently) must not mutate shared state.
    nbr_ptrs_.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      nbr_ptrs_[v].reserve(adj_[v].size());
      for (std::uint32_t u : adj_[v]) {
        nbr_ptrs_[v].push_back(data_[u].get());
      }
    }
  }

  // Instrumented-operation budget of an apply thunk on a vertex of degree
  // d: one load per neighbourhood member, one store to the centre, one
  // result store (the provided updates stay within this).
  static constexpr std::uint32_t thunk_step_budget(std::uint32_t max_deg) {
    return 2 * (max_deg + 1) + 4;
  }

  // --- standard bounded-degree topologies -------------------------------

  static std::vector<std::vector<std::uint32_t>> ring(std::uint32_t n) {
    WFL_CHECK(n >= 3);
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      adj[v] = {(v + n - 1) % n, (v + 1) % n};
    }
    return adj;
  }

  static std::vector<std::vector<std::uint32_t>> torus(std::uint32_t rows,
                                                       std::uint32_t cols) {
    WFL_CHECK(rows >= 3 && cols >= 3);
    std::vector<std::vector<std::uint32_t>> adj(rows * cols);
    auto id = [cols](std::uint32_t r, std::uint32_t c) {
      return r * cols + c;
    };
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        adj[id(r, c)] = {id((r + rows - 1) % rows, c),
                         id((r + 1) % rows, c),
                         id(r, (c + cols - 1) % cols),
                         id(r, (c + 1) % cols)};
      }
    }
    return adj;
  }

  // Random d-regular-ish graph via d/2 superimposed random perfect
  // matchings on a shuffled cycle; degree is capped, self/multi edges
  // dropped. Deterministic from the seed.
  static std::vector<std::vector<std::uint32_t>> random_regular(
      std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
    WFL_CHECK(n >= 4 && d >= 2 && d + 1 <= kMaxLocksPerAttempt);
    std::vector<std::vector<std::uint32_t>> adj(n);
    Xoshiro256 rng(seed);
    auto has_edge = [&adj](std::uint32_t a, std::uint32_t b) {
      for (std::uint32_t x : adj[a]) {
        if (x == b) return true;
      }
      return false;
    };
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
    for (std::uint32_t round = 0; round < (d + 1) / 2; ++round) {
      for (std::uint32_t i = n - 1; i > 0; --i) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(rng.next_below(i + 1));
        std::swap(perm[i], perm[j]);
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t a = perm[i];
        const std::uint32_t b = perm[(i + 1) % n];
        if (a == b || has_edge(a, b)) continue;
        if (adj[a].size() + 1 >= kMaxLocksPerAttempt ||
            adj[b].size() + 1 >= kMaxLocksPerAttempt) {
          continue;
        }
        adj[a].push_back(b);
        adj[b].push_back(a);
      }
    }
    return adj;
  }

  // --- the core operation ------------------------------------------------

  // One tryLock *attempt* at a local update on v's neighbourhood: the
  // functor receives the centre cell and the neighbour cells and may
  // m.load/m.store them. Returns true iff the attempt won (the paper's
  // tryLock semantics; callers own the retry policy). F must be capture-
  // light: it is copied into the descriptor's FixedFunction.
  template <typename F>
  bool try_apply(Sess& session, std::uint32_t v, F&& f,
                 AttemptInfo* info = nullptr) {
    const Outcome o =
        submit_apply(session, v, std::forward<F>(f), Policy::one_shot());
    if (info != nullptr) {
      info->won = o.won;
      info->pre_reveal_work = o.pre_reveal_work;
      info->post_reveal_work = o.post_reveal_work;
      info->total_steps = o.total_steps;
    }
    return o.won;
  }

  // Retry-until-success wrapper; returns the number of attempts used.
  template <typename F>
  std::uint64_t apply(Sess& session, std::uint32_t v, F&& f) {
    return submit_apply(session, v, std::forward<F>(f), Policy::retry())
        .attempts;
  }

  // The general form: one local update on v's neighbourhood under an
  // arbitrary executor Policy, with the unified Outcome accounting.
  template <typename F>
  Outcome submit_apply(Sess& session, std::uint32_t v, F&& f, Policy policy) {
    WFL_DASSERT(&session.space() == &space_);
    WFL_CHECK(v < adj_.size());
    StaticLockSet<kMaxLocksPerAttempt> locks{v};
    for (std::uint32_t u : adj_[v]) locks.insert(u);
    LockedGraph* self = this;
    auto fn = std::forward<F>(f);
    return B::submit(
        session, locks,
        [self, v, fn](IdemCtx<Plat>& m) { fn(m, self->view(v)); }, policy);
  }

  // Neighbourhood view handed to update functors.
  struct View {
    Cell<Plat>* centre;
    Cell<Plat>* const* neighbours;
    std::uint32_t degree;
  };

  View view(std::uint32_t v) {
    return View{data_[v].get(), nbr_ptrs_[v].data(),
                static_cast<std::uint32_t>(adj_[v].size())};
  }

  // --- ready-made local updates ------------------------------------------

  // Greedy colouring step: set centre to the smallest colour (1-based) not
  // used by any neighbour. Colour 0 means "uncoloured".
  std::uint64_t colour_vertex(Sess& session, std::uint32_t v) {
    return apply(session, v, [](IdemCtx<Plat>& m, View nb) {
      std::uint32_t used = 0;  // bitmask over colours 1..deg+1
      for (std::uint32_t i = 0; i < nb.degree; ++i) {
        const std::uint32_t c = m.load(*nb.neighbours[i]);
        if (c >= 1 && c <= 32) used |= 1u << (c - 1);
      }
      std::uint32_t c = 1;
      while (used & (1u << (c - 1))) ++c;
      m.store(*nb.centre, c);
    });
  }

  // Averaging step (integer): centre := floor(mean of neighbourhood).
  std::uint64_t average_vertex(Sess& session, std::uint32_t v) {
    return apply(session, v, [](IdemCtx<Plat>& m, View nb) {
      std::uint64_t sum = m.load(*nb.centre);
      for (std::uint32_t i = 0; i < nb.degree; ++i) {
        sum += m.load(*nb.neighbours[i]);
      }
      m.store(*nb.centre,
              static_cast<std::uint32_t>(sum / (nb.degree + 1)));
    });
  }

  // --- quiescent inspection ----------------------------------------------

  std::uint32_t value(std::uint32_t v) const { return data_[v]->peek(); }
  void set_value(std::uint32_t v, std::uint32_t x) { data_[v]->init(x); }
  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(adj_.size());
  }
  const std::vector<std::uint32_t>& neighbours(std::uint32_t v) const {
    return adj_[v];
  }

  // Quiescent-only: is the current assignment a proper colouring (no edge
  // monochromatic, no vertex uncoloured)?
  bool properly_coloured() const {
    for (std::uint32_t v = 0; v < adj_.size(); ++v) {
      if (value(v) == 0) return false;
      for (std::uint32_t u : adj_[v]) {
        if (value(u) == value(v)) return false;
      }
    }
    return true;
  }

 private:
  Space& space_;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<std::unique_ptr<Cell<Plat>>> data_;
  std::vector<std::vector<Cell<Plat>*>> nbr_ptrs_;  // immutable after ctor
};

}  // namespace wfl
