// Application substrate: a two-lock FIFO queue (Michael & Scott 1996
// shape) built on the wait-free tryLocks, plus an atomic cross-queue
// transfer — the multi-object composition the paper's lock-set API makes
// trivial and conventional two-lock queues make deadlock-prone.
//
// The queue is a linked list with a dummy head node: enqueue touches only
// the tail (lock id `tail_lock`), dequeue only the head (lock id
// `head_lock`), so producers and consumers never contend on the same lock
// (the dummy keeps head != tail even at size 1).
//
//   * enqueue: L = 1 on the tail lock.
//   * dequeue: L = 1 on the head lock.
//   * transfer(src, dst): dequeues from src and enqueues into dst in ONE
//     critical section: lock set {src.head_lock, dst.tail_lock} — with
//     ordinary locks this is the textbook deadlock recipe (opposing
//     orders), with tryLocks it needs no lock ordering discipline at all.
//
// Dequeued nodes are retired, not recycled, until quiescent (same policy
// as every substrate here).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "wfl/core/backend.hpp"
#include "wfl/core/executor.hpp"
#include "wfl/core/lock_table.hpp"
#include "wfl/core/session.hpp"
#include "wfl/idem/cell.hpp"
#include "wfl/mem/arena.hpp"
#include "wfl/util/assert.hpp"

namespace wfl {

inline constexpr std::uint32_t kQueueNil = 0xFFFFFFFFu;

enum : std::uint32_t {
  kQueuePending = 0,
  kQueueOk = 1,
  kQueueEmpty = 2,
};

// Backend-generic (see core/backend.hpp): a bare platform parameter is
// shorthand for the wait-free backend.
template <typename BackendT>
class LockedQueue {
 public:
  using B = resolve_backend_t<BackendT>;
  static_assert(LockBackend<B>, "LockedQueue requires a LockBackend");
  using Plat = typename B::Platform;
  using Space = typename B::Space;
  using Sess = typename B::Session;

  // `head_lock` and `tail_lock` are lock ids in `space` (distinct; several
  // queues may live in one space on disjoint ids so transfers compose).
  LockedQueue(Space& space, std::uint32_t head_lock, std::uint32_t tail_lock,
              std::uint32_t capacity)
      : space_(space),
        head_lock_(head_lock),
        tail_lock_(tail_lock),
        pool_(capacity) {
    WFL_CHECK(head_lock != tail_lock);
    WFL_CHECK(static_cast<int>(head_lock) < space.num_locks());
    WFL_CHECK(static_cast<int>(tail_lock) < space.num_locks());
    const std::uint32_t dummy = pool_.alloc();
    pool_.at(dummy).value.init(0);
    pool_.at(dummy).next.init(kQueueNil);
    head_.init(dummy);
    tail_.init(dummy);
    for (int i = 0; i < space.max_procs(); ++i) {
      results_.push_back(std::make_unique<Cell<Plat>>(0u));
      out_vals_.push_back(std::make_unique<Cell<Plat>>(0u));
    }
  }

  // Appends `value`. Retries lost attempts internally; never fails (the
  // pool aborts loudly if capacity is exceeded, per the arena contract).
  void enqueue(Sess& session, std::uint32_t value,
               std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    const std::uint32_t fresh = pool_.alloc();
    pool_.at(fresh).value.init(value);
    pool_.at(fresh).next.init(kQueueNil);
    Cell<Plat>* tail_ptr = &tail_;
    LockedQueue* self = this;
    const StaticLockSet<1> locks{tail_lock_};
    const Outcome o = B::submit(
        session, locks,
        [self, tail_ptr, fresh](IdemCtx<Plat>& m) {
          const std::uint32_t last = m.load(*tail_ptr);
          m.store(self->pool_.at(last).next, fresh);
          m.store(*tail_ptr, fresh);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
  }

  // Removes the front element into *out. Returns kQueueOk or kQueueEmpty.
  std::uint32_t dequeue(Sess& session, std::uint32_t* out,
                        std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &space_);
    Cell<Plat>& res = result_of(session);
    Cell<Plat>& oval = out_val_of(session);
    Cell<Plat>* res_ptr = &res;
    Cell<Plat>* out_ptr = &oval;
    Cell<Plat>* head_ptr = &head_;
    LockedQueue* self = this;
    const StaticLockSet<1> locks{head_lock_};
    const Outcome o = B::submit(
        session, locks,
        [self, head_ptr, res_ptr, out_ptr](IdemCtx<Plat>& m) {
          const std::uint32_t dummy = m.load(*head_ptr);
          const std::uint32_t first = m.load(self->pool_.at(dummy).next);
          if (first == kQueueNil) {
            m.store(*res_ptr, kQueueEmpty);
            return;
          }
          m.store(*out_ptr, m.load(self->pool_.at(first).value));
          m.store(*head_ptr, first);  // `first` becomes the new dummy
          m.store(*res_ptr, kQueueOk);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    if (res.peek() == kQueueOk) {
      *out = oval.peek();
      retired_.fetch_add(1, std::memory_order_relaxed);
      return kQueueOk;
    }
    return kQueueEmpty;
  }

  // Atomically moves the front of `src` to the back of `dst`: either both
  // happen or (src empty) neither. One critical section over two queues.
  static std::uint32_t transfer(Sess& session, LockedQueue& src,
                                LockedQueue& dst,
                                std::uint64_t* attempts = nullptr) {
    WFL_DASSERT(&session.space() == &src.space_);
    WFL_CHECK(&src.space_ == &dst.space_);
    WFL_CHECK(&src != &dst);
    // A node moved from src to dst keeps its pool slot: both queues must
    // draw from compatible pools, so transfer pre-allocates in dst and
    // copies the value — node identity does not cross pools.
    const std::uint32_t fresh = dst.pool_.alloc();
    dst.pool_.at(fresh).value.init(0);
    dst.pool_.at(fresh).next.init(kQueueNil);
    Cell<Plat>& res = src.result_of(session);
    Cell<Plat>* res_ptr = &res;
    LockedQueue* s = &src;
    LockedQueue* d = &dst;
    const StaticLockSet<2> locks{src.head_lock_, dst.tail_lock_};
    const Outcome o = B::submit(
        session, locks, [s, d, fresh, res_ptr](IdemCtx<Plat>& m) {
          const std::uint32_t dummy = m.load(s->head_);
          const std::uint32_t first = m.load(s->pool_.at(dummy).next);
          if (first == kQueueNil) {
            m.store(*res_ptr, kQueueEmpty);
            return;
          }
          // Pop from src ...
          const std::uint32_t v = m.load(s->pool_.at(first).value);
          m.store(s->head_, first);
          // ... and push into dst within the same critical section.
          m.store(d->pool_.at(fresh).value, v);
          const std::uint32_t last = m.load(d->tail_);
          m.store(d->pool_.at(last).next, fresh);
          m.store(d->tail_, fresh);
          m.store(*res_ptr, kQueueOk);
        },
        Policy::retry());
    if (attempts != nullptr) *attempts += o.attempts;
    const std::uint32_t r = res.peek();
    if (r != kQueueOk) dst.pool_.free(fresh);  // thunk never touched it
    if (r == kQueueOk) src.retired_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }

  // Quiescent-only: walk the queue, validating linkage; returns contents.
  std::vector<std::uint32_t> snapshot() const {
    std::vector<std::uint32_t> out;
    std::uint32_t cur = pool_.at(head_.peek()).next.peek();
    while (cur != kQueueNil) {
      out.push_back(pool_.at(cur).value.peek());
      cur = pool_.at(cur).next.peek();
    }
    if (out.empty()) {
      WFL_CHECK_MSG(head_.peek() == tail_.peek(),
                    "empty queue must have head == tail");
    }
    return out;
  }

  std::uint64_t retired_nodes() const {
    return retired_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    Cell<Plat> value;
    Cell<Plat> next;
  };

  Cell<Plat>& result_of(Sess& session) {
    return *results_[static_cast<std::size_t>(session.pid())];
  }
  Cell<Plat>& out_val_of(Sess& session) {
    return *out_vals_[static_cast<std::size_t>(session.pid())];
  }

  Space& space_;
  std::uint32_t head_lock_;
  std::uint32_t tail_lock_;
  IndexPool<Node> pool_;
  Cell<Plat> head_;
  Cell<Plat> tail_;
  std::vector<std::unique_ptr<Cell<Plat>>> results_;
  std::vector<std::unique_ptr<Cell<Plat>>> out_vals_;
  std::atomic<std::uint64_t> retired_{0};
};

}  // namespace wfl
